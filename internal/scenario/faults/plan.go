package faults

import (
	"fmt"
	"sort"
	"time"

	"slscost/internal/stats"
)

// Kind is one fault event's effect on its host.
type Kind uint8

const (
	// DrainStart stops the host accepting new requests: idle sandboxes
	// evict immediately, active ones evict as they finish (no
	// keep-alive window), and arrivals queue for replay.
	DrainStart Kind = iota + 1
	// DrainEnd ends a drain window (paired with DrainStart).
	DrainEnd
	// Down takes the host hard-down: every in-flight request is
	// killed, every resident sandbox evicts, and downtime accrues
	// until the matching Up.
	Down
	// Up restores a downed host; requests deferred while it was
	// unavailable replay in arrival order at this instant.
	Up
	// Flush is the cold-start storm: idle sandboxes evict at once and
	// active ones are marked to evict when they finish, so every
	// function on the host pays a fresh cold start.
	Flush
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case DrainStart:
		return "drain-start"
	case DrainEnd:
		return "drain-end"
	case Down:
		return "down"
	case Up:
		return "up"
	case Flush:
		return "flush"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled fault effect on one host. Within a host,
// events replay in slice order; same-instant events keep their
// compilation order on every replay mechanism (the fleet's timing
// wheel, the stream feed, and the oracle's heap all break ties by
// scheduling sequence).
type Event struct {
	At   time.Duration
	Kind Kind
}

// Window is one closed interval of host unavailability (drain or
// down), as the placement pass consumes it.
type Window struct {
	From, To time.Duration
}

// Plan is a Spec resolved against a concrete cluster: per-host event
// schedules plus the merged unavailability windows placement masks
// hosts with. A Plan is immutable and safe to share across concurrent
// host shards; replaying the same Plan is what keeps the fleet and the
// differential oracle in exact agreement.
type Plan struct {
	hosts   int
	horizon time.Duration
	events  [][]Event
	closed  [][]Window
	total   int
}

// Stream-decorrelation salts for the per-host random fault processes.
const (
	saltCrash   = 0x6661636b // "fack"
	saltPreempt = 0x66707265 // "fpre"
)

// Compile resolves the spec into per-host fault schedules for a
// cluster of the given size over one horizon period. Rate-driven axes
// (crash, preempt) draw Poisson processes from per-(axis, host)
// streams derived from seed, so the plan is a pure function of (spec,
// hosts, horizon, seed) — independent of worker counts and replay
// order. A nil spec compiles to a nil plan (no faults).
func Compile(spec *Spec, hosts int, horizon time.Duration, seed uint64) (*Plan, error) {
	if spec == nil {
		return nil, nil
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if hosts <= 0 {
		return nil, fmt.Errorf("faults: non-positive host count %d", hosts)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("faults: non-positive horizon %v", horizon)
	}
	p := &Plan{
		hosts:   hosts,
		horizon: horizon,
		events:  make([][]Event, hosts),
		closed:  make([][]Window, hosts),
	}
	h := horizon.Seconds()

	// Normalized copies of the scheduled axes: instants wrap modulo
	// one period, so a spec shifted by whole periods compiles to the
	// identical plan.
	var drains []DrainSpec
	for _, d := range spec.Drains {
		drains = append(drains, d.normalize())
	}
	sort.Slice(drains, func(i, j int) bool { return drains[i].From < drains[j].From })

	for hi := 0; hi < hosts; hi++ {
		var evs []Event
		// Axis emission order is fixed (crash, preempt, AZ outage,
		// drains, storm) and each axis emits in time order, so the
		// stable sort below gives same-instant events a deterministic
		// cross-axis order.
		if c := spec.Crash; c != nil && c.Rate > 0 {
			rng := stats.NewRand(stats.MixSeed(stats.MixSeed(seed, saltCrash), uint64(hi)+1))
			mean := h / c.Rate
			t := rng.Exp(mean)
			for t < h {
				at := time.Duration(t * float64(time.Second))
				evs = append(evs,
					Event{At: at, Kind: Down},
					Event{At: at + time.Duration(c.Restart), Kind: Up})
				// The next crash is drawn from the end of the restart:
				// a host cannot crash while it is already down.
				t = (at + time.Duration(c.Restart)).Seconds() + rng.Exp(mean)
			}
		}
		if pr := spec.Preempt; pr != nil && pr.Rate > 0 {
			rng := stats.NewRand(stats.MixSeed(stats.MixSeed(seed, saltPreempt), uint64(hi)+1))
			mean := h / pr.Rate
			t := rng.Exp(mean)
			for t < h {
				notice := time.Duration(t * float64(time.Second))
				kill := notice + time.Duration(pr.Notice)
				back := kill + time.Duration(pr.Restart)
				evs = append(evs,
					Event{At: notice, Kind: DrainStart},
					Event{At: kill, Kind: Down},
					Event{At: back, Kind: Up},
					Event{At: back, Kind: DrainEnd})
				t = back.Seconds() + rng.Exp(mean)
			}
		}
		if a := spec.AZOutage; a != nil && hi%a.Zones == a.Zone {
			at := time.Duration(wrapFrac(a.At) * float64(horizon))
			evs = append(evs,
				Event{At: at, Kind: Down},
				Event{At: at + time.Duration(a.Duration), Kind: Up})
		}
		for _, d := range drains {
			span := (d.To - d.From) * float64(horizon)
			start := time.Duration(d.From*float64(horizon) + float64(hi)/float64(hosts)*span)
			kill := start + time.Duration(d.Grace)
			back := kill + time.Duration(d.Restart)
			evs = append(evs,
				Event{At: start, Kind: DrainStart},
				Event{At: kill, Kind: Down},
				Event{At: back, Kind: Up},
				Event{At: back, Kind: DrainEnd})
		}
		if st := spec.Storm; st != nil {
			evs = append(evs, Event{At: time.Duration(wrapFrac(st.At) * float64(horizon)), Kind: Flush})
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		p.events[hi] = evs
		p.closed[hi] = closedWindows(evs)
		p.total += len(evs)
	}
	return p, nil
}

// closedWindows sweeps a host's sorted events with a depth counter
// (drain and down nest across axes) and returns the merged intervals
// during which the host accepts no new work.
func closedWindows(evs []Event) []Window {
	var out []Window
	depth := 0
	var open time.Duration
	for _, ev := range evs {
		switch ev.Kind {
		case DrainStart, Down:
			if depth == 0 {
				open = ev.At
			}
			depth++
		case DrainEnd, Up:
			depth--
			if depth == 0 {
				out = append(out, Window{From: open, To: ev.At})
			}
		}
	}
	if depth > 0 { // unbalanced only if a closing event compiled past callers' interest; close at +inf
		out = append(out, Window{From: open, To: 1<<62 - 1})
	}
	return out
}

// Hosts returns the cluster size the plan was compiled for.
func (p *Plan) Hosts() int { return p.hosts }

// Horizon returns the period length the plan was compiled against.
func (p *Plan) Horizon() time.Duration { return p.horizon }

// Events returns the total scheduled event count across hosts.
func (p *Plan) Events() int { return p.total }

// Empty reports whether the plan schedules nothing: a zero-rate or
// all-axes-absent spec compiles to an empty plan, which every consumer
// treats exactly like no plan at all.
func (p *Plan) Empty() bool { return p == nil || p.total == 0 }

// HostEvents returns host h's schedule in replay order. The slice is
// shared and must not be mutated.
func (p *Plan) HostEvents(h int) []Event {
	if p == nil || h < 0 || h >= p.hosts {
		return nil
	}
	return p.events[h]
}

// ClosedWindows returns host h's merged unavailability intervals in
// time order. The slice is shared and must not be mutated.
func (p *Plan) ClosedWindows(h int) []Window {
	if p == nil || h < 0 || h >= p.hosts {
		return nil
	}
	return p.closed[h]
}

// UnavailableAt reports whether host h accepts no new placements at
// instant t (t inside a closed window; the restore instant itself
// accepts again, matching the replay's deferred-arrival semantics).
func (p *Plan) UnavailableAt(h int, t time.Duration) bool {
	if p == nil || h < 0 || h >= p.hosts {
		return false
	}
	ws := p.closed[h]
	i := sort.Search(len(ws), func(i int) bool { return ws[i].To > t })
	return i < len(ws) && ws[i].From <= t
}
