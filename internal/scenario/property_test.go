package scenario

// Property and metamorphic tests of the scenario engine: the invariants
// the differential harness and the golden fixtures lean on. Same seed ⇒
// identical trace; doubling the request volume preserves the arrival-
// shape marginals (mod one period); scaling every Mix weight by the
// same constant is a no-op; re-timing never disturbs what the base
// generator calibrated (durations, flavors, pod structure).

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func TestSameSeedSameTrace(t *testing.T) {
	for _, sc := range Catalog() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cfg := smallConfig(4000)
			a, err := sc.Trace(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sc.Trace(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different traces")
			}
		})
	}
}

func TestDifferentSeedDifferentTrace(t *testing.T) {
	sc, _ := ByName("flash-crowd")
	cfg := smallConfig(4000)
	a, _ := sc.Trace(cfg)
	cfg.Base.Seed++
	b, _ := sc.Trace(cfg)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical traces")
	}
}

// arrivalMarginals histograms arrival times modulo the period into
// bins, as request-mass shares.
func arrivalMarginals(starts []time.Duration, period time.Duration, bins int) []float64 {
	out := make([]float64, bins)
	for _, s := range starts {
		x := math.Mod(s.Seconds(), period.Seconds()) / period.Seconds()
		i := int(x * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		out[i]++
	}
	for i := range out {
		out[i] /= float64(len(starts))
	}
	return out
}

// TestDoublingRequestsPreservesShapeMarginals is the metamorphic check:
// the per-period distribution of arrival mass is a property of the
// shape, not of the request volume, so doubling Requests (with the
// horizon pinned) must leave the normalized marginals in place.
func TestDoublingRequestsPreservesShapeMarginals(t *testing.T) {
	const bins = 8
	for _, name := range []string{"steady", "diurnal", "flash-crowd", "ramp"} {
		sc, _ := ByName(name)
		t.Run(name, func(t *testing.T) {
			period := 2 * time.Hour
			hist := func(requests int) []float64 {
				cfg := smallConfig(requests)
				cfg.Horizon = period
				tr, err := sc.Trace(cfg)
				if err != nil {
					t.Fatal(err)
				}
				starts := make([]time.Duration, tr.Len())
				for i, r := range tr.Requests {
					starts[i] = r.Start
				}
				return arrivalMarginals(starts, period, bins)
			}
			h1 := hist(20000)
			h2 := hist(40000)
			for i := range h1 {
				// Extreme concentrations (flash-crowd packs ~80% of the
				// mass into one bin) converge in per-function granularity,
				// so the bound is loose but still far below any shape-
				// confusing drift.
				if d := math.Abs(h1[i] - h2[i]); d > 0.06 {
					t.Errorf("bin %d: share %.4f vs %.4f at 2x requests (delta %.4f)",
						i, h1[i], h2[i], d)
				}
			}
		})
	}
}

// TestMarginalsFollowShape sanity-checks that the synthesized mass
// actually lands where the shape says: the flash-crowd spike bin must
// dominate, the diurnal trough bin must be starved.
func TestMarginalsFollowShape(t *testing.T) {
	period := 2 * time.Hour
	cfg := smallConfig(30000)
	cfg.Horizon = period

	fc, _ := ByName("flash-crowd")
	tr, err := fc.Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var inSpike float64
	for _, r := range tr.Requests {
		x := math.Mod(r.Start.Seconds(), period.Seconds()) / period.Seconds()
		if x >= 0.5 && x < 0.52 {
			inSpike++
		}
	}
	if share := inSpike / float64(tr.Len()); share < 0.3 {
		t.Errorf("flash-crowd spike holds only %.1f%% of requests", share*100)
	}

	di, _ := ByName("diurnal")
	tr, err = di.Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var night, day float64
	for _, r := range tr.Requests {
		x := math.Mod(r.Start.Seconds(), period.Seconds()) / period.Seconds()
		if x < 0.1 || x >= 0.9 {
			night++
		} else if x >= 0.4 && x < 0.6 {
			day++
		}
	}
	if night >= day {
		t.Errorf("diurnal trough (%v requests) not below peak (%v)", night, day)
	}
}

// TestMixWeightsSumNormalize: scaling all weights by a constant is a
// no-op, and relative weights set the per-tenant request shares.
func TestMixWeightsSumNormalize(t *testing.T) {
	mk := func(w1, w2 float64) Scenario {
		return Mix("m",
			Tenant{Name: "a", Weight: w1, Shape: Steady{}},
			Tenant{Name: "b", Weight: w2, Shape: Diurnal{Trough: 0.2}},
		)
	}
	cfg := smallConfig(8000)
	a, err := mk(1, 3).Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk(10, 30).Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("scaling all mix weights changed the trace")
	}

	// Tenant a owns the low function-ID range; its share must be ≈ 1/4.
	fnCut := cfg.Base.Functions / 4 // 1:3 weight split over the function budget
	var inA int
	for _, r := range a.Requests {
		if r.FnID < fnCut {
			inA++
		}
	}
	share := float64(inA) / float64(a.Len())
	if share < 0.2 || share > 0.3 {
		t.Errorf("tenant a's request share %.3f, want ≈ 0.25", share)
	}
}

// TestRetimePreservesBaseStructure: the scenario layer must only move
// arrivals — pod membership, durations, CPU/memory, flavors, and
// cold-start markers all come from the calibrated generator.
func TestRetimePreservesBaseStructure(t *testing.T) {
	cfg := smallConfig(5000)
	sc, _ := ByName("bursty")
	shaped, err := sc.Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := (Scenario{Name: "s", Shape: Steady{}}).Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		dur   time.Duration
		cpu   time.Duration
		mem   float64
		cold  bool
		alloc float64
	}
	tally := func(reqs []key) map[key]int {
		m := map[key]int{}
		for _, k := range reqs {
			m[k]++
		}
		return m
	}
	var a, b []key
	for _, r := range shaped.Requests {
		a = append(a, key{r.Duration, r.CPUTime, r.MemUsedMB, r.ColdStart, r.AllocCPU})
	}
	for _, r := range base.Requests {
		b = append(b, key{r.Duration, r.CPUTime, r.MemUsedMB, r.ColdStart, r.AllocCPU})
	}
	if !reflect.DeepEqual(tally(a), tally(b)) {
		t.Fatal("re-timing disturbed the base trace's per-request structure")
	}
}

// TestColdStartOrderingAcrossScenarios: the headline behavioral claim —
// shaped traffic defeats keep-alive where steady traffic does not.
// Checked at trace level via idle-gap mass rather than a full fleet
// simulation (the fleet-level assertion lives in diffsim's tests).
func TestColdStartOrderingAcrossScenarios(t *testing.T) {
	gapMass := func(name string) float64 {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("missing scenario %s", name)
		}
		cfg := smallConfig(20000)
		tr, err := sc.Trace(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Count per-pod idle gaps beyond a 360 s keep-alive window.
		lastEnd := map[int]time.Duration{}
		var beyond float64
		for _, r := range tr.Requests {
			if end, ok := lastEnd[r.PodID]; ok && r.Start-end > 360*time.Second {
				beyond++
			}
			lastEnd[r.PodID] = r.Start + r.Duration
		}
		return beyond / float64(tr.Len())
	}
	steady := gapMass("steady")
	flash := gapMass("flash-crowd")
	bursty := gapMass("bursty")
	if flash <= steady {
		t.Errorf("flash-crowd keep-alive-defeating gap mass %.4f not above steady %.4f", flash, steady)
	}
	if bursty <= steady {
		t.Errorf("bursty gap mass %.4f not above steady %.4f", bursty, steady)
	}
}
