package scenario

import (
	"fmt"
	"math"
	"sort"
	"time"

	"slscost/internal/stats"
	"slscost/internal/trace"
)

// Tenant is one slice of a multi-tenant mix: a share of the total
// request volume with its own arrival shape, popularity skew, and
// flavor bias. Weights are normalized at synthesis time, so scaling
// every weight by the same constant yields the identical trace.
type Tenant struct {
	Name   string
	Weight float64
	Shape  Shape
	// ZipfExponent and FlavorBias feed straight into the tenant's
	// trace.GeneratorConfig (zero keeps the calibrated defaults).
	ZipfExponent float64
	FlavorBias   int
}

// Scenario is a named workload: either a single shape applied to the
// whole request volume, or a tenant mix (Tenants non-empty, which takes
// precedence over Shape).
type Scenario struct {
	Name        string
	Description string
	Shape       Shape
	Tenants     []Tenant
}

// Mix builds a multi-tenant scenario from explicit tenants.
func Mix(name string, tenants ...Tenant) Scenario {
	return Scenario{Name: name, Description: "multi-tenant mix", Tenants: tenants}
}

// Config parameterizes scenario trace synthesis.
type Config struct {
	// Base supplies the request volume, function count, seed, and the
	// calibrated marginals (durations, utilizations, pod structure).
	// Requests and Functions are totals across all tenants.
	Base trace.GeneratorConfig
	// Horizon is the length of one shape period in virtual time. Zero
	// derives it from the workload density (≈30 s of mean inter-arrival
	// headroom per request per function, clamped to [30 min, 48 h]) so a
	// function at median popularity spans about one period.
	Horizon time.Duration
	// Tenants fans a single-shape scenario into this many phase-shifted
	// tenants with cycling popularity skews and flavor biases; 0 or 1
	// leaves the scenario as authored. Ignored when the scenario defines
	// its own tenant mix.
	Tenants int
}

// DefaultConfig returns the calibrated generator under an auto horizon.
func DefaultConfig() Config { return Config{Base: trace.DefaultGeneratorConfig()} }

// EffectiveHorizon resolves the effective period length: the explicit
// Horizon when set, otherwise the workload-density-derived default.
// Exported because the fault compiler (internal/scenario/faults) keys
// its fraction-of-horizon instants to the same period the shapes use.
func (c Config) EffectiveHorizon() time.Duration { return c.horizon() }

// horizon resolves the effective period length.
func (c Config) horizon() time.Duration {
	if c.Horizon > 0 {
		return c.Horizon
	}
	functions := c.Base.Functions
	if functions <= 0 {
		functions = 1
	}
	h := time.Duration(float64(c.Base.Requests) / float64(functions) * 30 * float64(time.Second))
	if min := 30 * time.Minute; h < min {
		h = min
	}
	if max := 48 * time.Hour; h > max {
		h = max
	}
	return h
}

// Validate reports whether the scenario/config pair is usable.
func (s Scenario) Validate(cfg Config) error {
	if s.Shape == nil && len(s.Tenants) == 0 {
		return fmt.Errorf("scenario: %q has neither shape nor tenants", s.Name)
	}
	for _, t := range s.Tenants {
		if t.Shape == nil {
			return fmt.Errorf("scenario: %s: tenant %q without shape", s.Name, t.Name)
		}
		if t.Weight < 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
			return fmt.Errorf("scenario: %s: tenant %q has bad weight %v", s.Name, t.Name, t.Weight)
		}
	}
	if cfg.Base.Requests <= 0 {
		return fmt.Errorf("scenario: non-positive request count %d", cfg.Base.Requests)
	}
	if cfg.Tenants < 0 {
		return fmt.Errorf("scenario: negative tenant count %d", cfg.Tenants)
	}
	if cfg.Horizon < 0 {
		return fmt.Errorf("scenario: negative horizon %v", cfg.Horizon)
	}
	if err := cfg.Base.Validate(); err != nil {
		return err
	}
	return nil
}

// tenants resolves the effective tenant list: the scenario's own mix,
// an auto-derived fan-out of cfg.Tenants phase-shifted tenants, or a
// single whole-volume tenant.
func (s Scenario) tenants(cfg Config) []Tenant {
	if len(s.Tenants) > 0 {
		return s.Tenants
	}
	n := cfg.Tenants
	if n <= 1 {
		return []Tenant{{Name: s.Name, Weight: 1, Shape: s.Shape}}
	}
	// Deterministic fan-out: phases spread over the period, skew and
	// flavor bias cycling so tenants are distinguishable but the whole
	// derivation is a pure function of (scenario, n).
	out := make([]Tenant, n)
	zipfs := []float64{1.1, 0.9, 1.4}
	biases := []int{0, -1, 1}
	for i := range out {
		out[i] = Tenant{
			Name:         fmt.Sprintf("%s-t%d", s.Name, i),
			Weight:       1,
			Shape:        Shifted{Shape: s.Shape, Phase: float64(i) / float64(n)},
			ZipfExponent: zipfs[i%len(zipfs)],
			FlavorBias:   biases[i%len(biases)],
		}
	}
	return out
}

// tenantAlloc is one tenant's resolved slice of the synthesis: its
// shape, its fully parameterized generator config, its private shape
// seed, and the function-ID offset its output shifts by. Both the
// materialized (Trace) and streaming (Stream) paths synthesize from
// the same plan, which is what keeps them bit-identical.
type tenantAlloc struct {
	shape     Shape
	gcfg      trace.GeneratorConfig
	shapeSeed uint64
	fnBase    int
}

// plan splits the request and function budgets across the effective
// tenant list. Tenants whose rounded share is zero requests are
// dropped (they consume none of the function budget); every retained
// tenant gets at least one function, and a reservation keeps rounding
// from pushing later tenants past the budget.
func (s Scenario) plan(cfg Config) ([]tenantAlloc, error) {
	tenants := s.tenants(cfg)

	var totalWeight float64
	for _, t := range tenants {
		totalWeight += t.Weight
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("scenario: %s: tenant weights sum to %v", s.Name, totalWeight)
	}
	functionBudget := cfg.Base.Functions
	if functionBudget <= 0 {
		functionBudget = 1
	}
	if len(tenants) > functionBudget {
		return nil, fmt.Errorf("scenario: %s: %d tenants exceed the %d-function budget",
			s.Name, len(tenants), functionBudget)
	}

	var plans []tenantAlloc
	fnBase := 0
	remaining := cfg.Base.Requests
	remainingFns := cfg.Base.Functions
	if remainingFns <= 0 {
		remainingFns = 1
	}
	weightLeft := totalWeight
	for i, t := range tenants {
		share := t.Weight / weightLeft
		reqs := int(math.Round(float64(remaining) * share))
		fns := int(math.Round(float64(remainingFns) * share))
		if i == len(tenants)-1 {
			reqs, fns = remaining, remainingFns
		}
		if reqs > remaining {
			reqs = remaining
		}
		remaining -= reqs
		weightLeft -= t.Weight
		if reqs == 0 {
			continue // emits nothing: consumes none of the function budget
		}
		// Reserve one function per tenant still to come so rounding can
		// never push later tenants (and their function IDs) past the
		// budget; the cap only binds in near-degenerate weight splits.
		if maxFns := remainingFns - (len(tenants) - i - 1); fns > maxFns {
			fns = maxFns
		}
		if fns < 1 {
			fns = 1
		}
		remainingFns -= fns
		if remainingFns < 0 {
			remainingFns = 0
		}

		gcfg := cfg.Base
		gcfg.Requests = reqs
		gcfg.Functions = fns
		gcfg.Seed = mix(cfg.Base.Seed, 0x74656e+uint64(i)) // "ten"+i
		gcfg.ZipfExponent = t.ZipfExponent
		gcfg.FlavorBias = t.FlavorBias
		plans = append(plans, tenantAlloc{
			shape:     t.Shape,
			gcfg:      gcfg,
			shapeSeed: mix(cfg.Base.Seed, 0x736861+uint64(i)), // "sha"+i
			fnBase:    fnBase,
		})
		fnBase += fns
	}
	return plans, nil
}

// Trace synthesizes the scenario's request trace: per tenant, a
// calibrated base trace supplies functions, pods, durations, flavors,
// and cold-start structure, and the tenant's shape re-times every
// function's arrival stream as a shape-modulated renewal process. The
// result is sorted by arrival, satisfies (*trace.Trace).Validate, and
// is bit-reproducible from cfg.Base.Seed. Stream yields the identical
// request sequence without materializing it.
func (s Scenario) Trace(cfg Config) (*trace.Trace, error) {
	if err := s.Validate(cfg); err != nil {
		return nil, err
	}
	plans, err := s.plan(cfg)
	if err != nil {
		return nil, err
	}
	horizon := cfg.horizon()

	out := &trace.Trace{}
	podBase := 0
	for _, pl := range plans {
		base := trace.Generate(pl.gcfg)
		retime(base, pl.shape, horizon, pl.shapeSeed)

		maxPod := 0
		for ri := range base.Requests {
			r := &base.Requests[ri]
			r.FnID += pl.fnBase
			if r.PodID > maxPod {
				maxPod = r.PodID
			}
			r.PodID += podBase
		}
		podBase += maxPod
		out.Requests = append(out.Requests, base.Requests...)
	}

	// A single emitting tenant's block is already sorted by retime; only
	// a concatenation of several blocks needs the final pass. The sort
	// is stable and keyed on Start alone: cross-tenant ties keep the
	// tenant-major concatenation order and within-tenant ties stay in
	// retime's (Start, function) order — together exactly the tie rule
	// Stream's merge applies (sources are tenant-major, function-minor).
	if len(plans) > 1 {
		sort.SliceStable(out.Requests, func(a, b int) bool {
			return out.Requests[a].Start < out.Requests[b].Start
		})
	}
	return out, nil
}

// retime rewrites tr's arrival times in place: each function becomes an
// independent renewal process whose instantaneous rate follows shape
// (normalized to mean 1 and extended periodically over the horizon).
// A function with n requests gets a base mean gap of horizon/n, so all
// functions span about one period and popularity maps to density. Gaps
// scale inversely with the local intensity — droughts stretch idle time
// past keep-alive windows, bursts collapse it — while pod membership,
// ordering, durations, and flavors are untouched.
func retime(tr *trace.Trace, shape Shape, horizon time.Duration, seed uint64) {
	mean := meanRate(shape)
	if mean <= 0 {
		mean = 1 // degenerate all-zero shape: treat as steady
	}
	h := horizon.Seconds()

	// Group request indices by function, preserving arrival order
	// (trace.Generate output is sorted; per-function order is therefore
	// the generation order).
	byFn := make(map[int][]int)
	var fns []int
	for i, r := range tr.Requests {
		if _, ok := byFn[r.FnID]; !ok {
			fns = append(fns, r.FnID)
		}
		byFn[r.FnID] = append(byFn[r.FnID], i)
	}
	sort.Ints(fns)

	for _, fn := range fns {
		idxs := byFn[fn]
		rng := stats.NewRand(mix(seed, uint64(fn)+1))
		gapMean := h / float64(len(idxs))
		t := 0.0 // seconds
		for _, ri := range idxs {
			x := t / h
			x -= math.Floor(x)
			lam := shape.Rate(x) / mean
			if lam < intensityFloor || math.IsNaN(lam) {
				lam = intensityFloor
			}
			t += rng.Exp(gapMean / lam)
			r := &tr.Requests[ri]
			r.Start = time.Duration(t * float64(time.Second))
			t += r.Duration.Seconds()
		}
	}
	// Ties (same-nanosecond re-timed arrivals from different functions)
	// order by function index — the rule the streaming path's merge
	// applies, so Trace and Stream stay bit-identical even on ties.
	sort.SliceStable(tr.Requests, func(a, b int) bool {
		if tr.Requests[a].Start != tr.Requests[b].Start {
			return tr.Requests[a].Start < tr.Requests[b].Start
		}
		return tr.Requests[a].FnID < tr.Requests[b].FnID
	})
}

// mix derives a decorrelated splitmix-style stream seed from (seed,
// salt), the same stream-keying discipline the fleet simulator uses.
func mix(seed, salt uint64) uint64 { return stats.MixSeed(seed, salt) }
