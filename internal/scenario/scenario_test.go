package scenario

import (
	"math"
	"strings"
	"testing"
	"time"

	"slscost/internal/trace"
)

// smallConfig keeps synthesis fast for unit tests.
func smallConfig(requests int) Config {
	cfg := DefaultConfig()
	cfg.Base.Requests = requests
	cfg.Base.Functions = 60
	return cfg
}

func TestCatalogScenariosSynthesize(t *testing.T) {
	for _, sc := range Catalog() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tr, err := sc.Trace(smallConfig(5000))
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() != 5000 {
				t.Fatalf("got %d requests, want 5000", tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < tr.Len(); i++ {
				if tr.Requests[i].Start < tr.Requests[i-1].Start {
					t.Fatalf("trace not sorted at %d", i)
				}
			}
		})
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	for _, want := range []string{"steady", "diurnal", "flash-crowd", "bursty", "ramp", "multi-tenant"} {
		if _, ok := ByName(want); !ok {
			t.Errorf("scenario %q missing from catalog", want)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown scenario resolved")
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	steady, _ := ByName("steady")
	cases := []struct {
		name string
		sc   Scenario
		cfg  Config
	}{
		{"no shape", Scenario{Name: "x"}, smallConfig(100)},
		{"zero requests", steady, func() Config { c := smallConfig(100); c.Base.Requests = 0; return c }()},
		{"negative tenants", steady, func() Config { c := smallConfig(100); c.Tenants = -1; return c }()},
		{"negative horizon", steady, func() Config { c := smallConfig(100); c.Horizon = -time.Hour; return c }()},
		{"tenant without shape", Mix("m", Tenant{Name: "a", Weight: 1}), smallConfig(100)},
		{"nan weight", Mix("m", Tenant{Name: "a", Weight: math.NaN(), Shape: Steady{}}), smallConfig(100)},
		{"bad base", steady, func() Config {
			c := smallConfig(100)
			c.Base.MeanDurationMs = math.Inf(1)
			return c
		}()},
		{"more tenants than functions", steady, func() Config {
			c := smallConfig(100)
			c.Base.Functions = 3
			c.Tenants = 8
			return c
		}()},
	}
	for _, c := range cases {
		if _, err := c.sc.Trace(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestShapesAreSaneAndPeriodic(t *testing.T) {
	shapes := []Shape{
		Steady{},
		Diurnal{Cycles: 2, Trough: 0.1},
		FlashCrowd{At: 0.4, Width: 0.05, Baseline: 0.1, Magnitude: 10},
		Ramp{From: 0.2, To: 2},
		NewParetoBursts(1, 10, 1.3, 0.05),
		Overlay{Parts: []Shape{Steady{}, Diurnal{Trough: 0.5}}},
		Shifted{Shape: Diurnal{Trough: 0.2}, Phase: 0.25},
	}
	for _, s := range shapes {
		if s.Name() == "" {
			t.Errorf("%T: empty name", s)
		}
		for i := 0; i < 101; i++ {
			x := float64(i) / 101
			r := s.Rate(x)
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				t.Errorf("%s.Rate(%v) = %v", s.Name(), x, r)
			}
		}
		if m := meanRate(s); m <= 0 {
			t.Errorf("%s: mean rate %v", s.Name(), m)
		}
	}
}

func TestShiftedRotatesPhase(t *testing.T) {
	d := Diurnal{Cycles: 1, Trough: 0}
	s := Shifted{Shape: d, Phase: 0.25}
	if got, want := s.Rate(0.25), d.Rate(0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("shifted rate %v, want %v", got, want)
	}
}

func TestTenantFanOutSplitsFunctionsAndPods(t *testing.T) {
	cfg := smallConfig(6000)
	cfg.Tenants = 3
	sc, _ := ByName("steady")
	tr, err := sc.Trace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 6000 {
		t.Fatalf("got %d requests", tr.Len())
	}
	// Tenants must own disjoint function-ID ranges covering the budget.
	maxFn := 0
	for _, r := range tr.Requests {
		if r.FnID > maxFn {
			maxFn = r.FnID
		}
	}
	if maxFn >= cfg.Base.Functions {
		t.Errorf("function id %d exceeds budget %d", maxFn, cfg.Base.Functions)
	}
	// Pods must not be shared between functions (remap collision check).
	podFn := map[int]int{}
	for _, r := range tr.Requests {
		if fn, ok := podFn[r.PodID]; ok && fn != r.FnID {
			t.Fatalf("pod %d shared by functions %d and %d", r.PodID, fn, r.FnID)
		} else {
			podFn[r.PodID] = r.FnID
		}
	}
}

func TestMultiTenantScenarioHasTenantDiversity(t *testing.T) {
	sc, _ := ByName("multi-tenant")
	if len(sc.Tenants) < 3 {
		t.Fatalf("multi-tenant scenario has %d tenants", len(sc.Tenants))
	}
	names := make([]string, len(sc.Tenants))
	for i, tn := range sc.Tenants {
		names[i] = tn.Name
	}
	if strings.Join(names, ",") != "api,web,batch" {
		t.Errorf("tenant names %v", names)
	}
}

func TestAutoHorizonScalesWithDensity(t *testing.T) {
	cfg := Config{Base: trace.GeneratorConfig{Requests: 1_000_000, Functions: 400}}
	h := cfg.horizon()
	if h < time.Hour || h > 48*time.Hour {
		t.Errorf("auto horizon %v out of expected band", h)
	}
	small := Config{Base: trace.GeneratorConfig{Requests: 100, Functions: 400}}
	if small.horizon() != 30*time.Minute {
		t.Errorf("small-workload horizon %v, want clamp to 30m", small.horizon())
	}
	fixed := Config{Horizon: 2 * time.Hour}
	if fixed.horizon() != 2*time.Hour {
		t.Errorf("explicit horizon not honored: %v", fixed.horizon())
	}
}

func TestSubset(t *testing.T) {
	// Empty argument list is the whole catalog.
	all, err := Subset()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Catalog()) {
		t.Fatalf("Subset() = %d scenarios, want %d", len(all), len(Catalog()))
	}
	// Selection preserves catalog order regardless of argument order.
	got, err := Subset("bursty", "diurnal")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "diurnal" || got[1].Name != "bursty" {
		t.Errorf("Subset(bursty, diurnal) = %v, want catalog order [diurnal bursty]", names(got))
	}
	// Unknown and duplicate names are hard errors.
	if _, err := Subset("diurnal", "no-such"); err == nil {
		t.Error("Subset with unknown name did not fail")
	}
	if _, err := Subset("diurnal", "diurnal"); err == nil {
		t.Error("Subset with duplicate name did not fail")
	}
}

// names projects scenario names for test failure messages.
func names(scs []Scenario) []string {
	out := make([]string, len(scs))
	for i, s := range scs {
		out[i] = s.Name
	}
	return out
}
