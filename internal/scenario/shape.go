// Package scenario is the workload-scenario engine: it layers
// time-varying arrival shapes (diurnal cycles, flash crowds, heavy-tail
// bursts, ramps, multi-tenant mixes) on top of the calibrated
// internal/trace generator, producing deterministic seeded traces whose
// pod structure, durations, and flavors come from the generator but
// whose arrival process follows a composable intensity profile.
//
// The paper's trace is a single stationary mix; keep-alive cost and
// cold-start trade-offs (§2.4, §3.3) only diverge once traffic moves —
// a diurnal trough stretches idle gaps past the keep-alive window, a
// flash crowd compresses them to nothing and then abandons the warm
// pool. Scenarios make those regimes first-class inputs to
// internal/fleet, and internal/scenario/diffsim turns every scenario
// into a verification oracle by cross-checking the fleet report against
// an independent per-host replay.
//
// The combinator API is small: a Shape is a periodic relative-intensity
// curve over normalized time; Overlay composes shapes additively;
// Shifted rotates a shape's phase; Mix assembles per-tenant scenarios
// with their own shapes, popularity skew, and flavor bias.
package scenario

import (
	"fmt"
	"math"
	"strings"

	"slscost/internal/stats"
)

// Shape is a relative arrival-intensity curve over one period of
// normalized time. Rate reports the intensity at x ∈ [0, 1); callers
// extend it periodically (x mod 1) so workloads longer than one period
// repeat the profile. Only the curve's relative variation matters — the
// engine normalizes every shape to mean intensity 1 before use, so two
// scenarios at the same request count load the cluster with the same
// average rate and differ only in how that rate is distributed.
type Shape interface {
	Name() string
	Rate(x float64) float64
}

// Steady is the flat baseline: the stationary arrival mix the paper's
// trace (and the raw generator) models.
type Steady struct{}

// Name implements Shape.
func (Steady) Name() string { return "steady" }

// Rate implements Shape: a constant intensity of 1.
func (Steady) Rate(x float64) float64 { return 1 }

// Diurnal is a day/night cycle: a raised cosine oscillating between
// Trough (relative night intensity, in [0, 1]) and 1, Cycles times per
// period.
type Diurnal struct {
	Cycles int
	Trough float64
}

// Name implements Shape.
func (d Diurnal) Name() string { return "diurnal" }

// Rate implements Shape: a raised cosine between Trough and 1.
func (d Diurnal) Rate(x float64) float64 {
	cycles := d.Cycles
	if cycles <= 0 {
		cycles = 1
	}
	day := 0.5 - 0.5*math.Cos(2*math.Pi*float64(cycles)*x)
	return d.Trough + (1-d.Trough)*day
}

// FlashCrowd is a sudden spike over a quiet baseline: intensity Baseline
// everywhere except a burst of height Magnitude spanning [At, At+Width).
// The defaults (see the catalog) put most of the traffic inside the
// spike, so the off-peak remainder arrives with inter-request gaps long
// enough to defeat keep-alive windows — the regime where platforms
// re-pay cold starts the recording trace never saw.
type FlashCrowd struct {
	At        float64
	Width     float64
	Baseline  float64
	Magnitude float64
}

// Name implements Shape.
func (f FlashCrowd) Name() string { return "flash-crowd" }

// Rate implements Shape: Baseline everywhere, plus Magnitude inside
// the (modular) spike window.
func (f FlashCrowd) Rate(x float64) float64 {
	r := f.Baseline
	// Membership is modular so a spike straddling the period edge
	// (At+Width > 1) wraps instead of being clipped.
	xx := x - f.At
	xx -= math.Floor(xx)
	if xx < f.Width {
		r += f.Magnitude
	}
	return r
}

// Ramp grows (or decays) linearly from From at x=0 to To at x=1 — a
// launch-day adoption curve or a drain-down.
type Ramp struct {
	From, To float64
}

// Name implements Shape.
func (r Ramp) Name() string { return "ramp" }

// Rate implements Shape: linear interpolation from From to To.
func (r Ramp) Rate(x float64) float64 { return r.From + (r.To-r.From)*x }

// burst is one precomputed heavy-tail burst of a ParetoBursts shape.
type burst struct {
	center, width, height float64
}

// ParetoBursts scatters Pareto-heighted bursts over a quiet baseline:
// most bursts are small, a few are an order of magnitude taller, and
// the space between them is near-silent. Construct with NewParetoBursts
// so the burst layout is deterministic in the seed.
type ParetoBursts struct {
	Baseline float64
	bursts   []burst
}

// NewParetoBursts draws n bursts with Pareto(1, alpha) heights at
// seeded-uniform centers. Widths shrink as heights grow, keeping each
// burst's mass comparable — tall bursts are intense, not long.
func NewParetoBursts(seed uint64, n int, alpha, baseline float64) ParetoBursts {
	if n <= 0 {
		n = 8
	}
	if alpha <= 0 {
		alpha = 1.3
	}
	rng := stats.NewRand(seed)
	bs := make([]burst, n)
	for i := range bs {
		h := rng.Pareto(1, alpha)
		if h > 100 {
			h = 100
		}
		bs[i] = burst{
			center: rng.Float64(),
			width:  0.002 + 0.03/math.Sqrt(h),
			height: h,
		}
	}
	return ParetoBursts{Baseline: baseline, bursts: bs}
}

// Name implements Shape.
func (p ParetoBursts) Name() string { return "bursty" }

// Rate implements Shape: Baseline plus the stacked heights of every
// burst whose (circular) window covers x.
func (p ParetoBursts) Rate(x float64) float64 {
	r := p.Baseline
	for _, b := range p.bursts {
		// Circular distance: bursts near the period edge wrap instead of
		// losing the mass that falls past x=1.
		d := math.Abs(x - b.center)
		if d > 0.5 {
			d = 1 - d
		}
		if d < b.width/2 {
			r += b.height
		}
	}
	return r
}

// Overlay sums its parts, each scaled by the matching weight (nil
// Weights means equal). A diurnal baseline with a flash-crowd riding on
// top is Overlay{Parts: []Shape{Diurnal{...}, FlashCrowd{...}}}.
type Overlay struct {
	Parts   []Shape
	Weights []float64
}

// Name implements Shape, composing the part names.
func (o Overlay) Name() string {
	names := make([]string, len(o.Parts))
	for i, p := range o.Parts {
		names[i] = p.Name()
	}
	return "overlay(" + strings.Join(names, "+") + ")"
}

// Rate implements Shape: the weighted sum of the parts.
func (o Overlay) Rate(x float64) float64 {
	var r float64
	for i, p := range o.Parts {
		w := 1.0
		if i < len(o.Weights) {
			w = o.Weights[i]
		}
		r += w * p.Rate(x)
	}
	return r
}

// Shifted rotates a shape's phase by Phase periods — tenant B's day
// starts a third of a period after tenant A's.
type Shifted struct {
	Shape Shape
	Phase float64
}

// Name implements Shape, recording the phase.
func (s Shifted) Name() string { return fmt.Sprintf("%s@%.2f", s.Shape.Name(), s.Phase) }

// Rate implements Shape: the wrapped shape evaluated Phase later.
func (s Shifted) Rate(x float64) float64 {
	x += s.Phase
	x -= math.Floor(x)
	return s.Shape.Rate(x)
}

// meanRate estimates the shape's mean intensity over one period by
// midpoint sampling; the engine divides by it so every shape has mean 1.
func meanRate(s Shape) float64 {
	const k = 4096
	var sum float64
	for i := 0; i < k; i++ {
		r := s.Rate((float64(i) + 0.5) / k)
		if r > 0 && !math.IsNaN(r) && !math.IsInf(r, 0) {
			sum += r
		}
	}
	return sum / k
}
