package scenario

import (
	"math"
	"time"

	"slscost/internal/stats"
	"slscost/internal/trace"
)

// This file is the streaming face of the scenario engine: the same
// shape-modulated renewal re-timing Trace applies to a materialized
// base trace, applied lazily to per-function generator streams and
// merged by arrival time. Memory is O(tenants × functions) instead of
// O(requests), and the emitted sequence is bit-identical to Trace's —
// the fleet simulator's streamed and materialized paths must agree to
// the byte, so the re-timer draws the exact per-function random
// streams retime does.

// intensityFloor bounds how far a dead zone of a shape can stretch
// inter-arrival gaps (10^4×), so traces terminate even under shapes
// that are zero almost everywhere. Shared by the in-place re-timer and
// the streaming one.
const intensityFloor = 1e-4

// retimeStream lazily re-times one function's generator stream as a
// shape-modulated renewal process, applying the tenant's function- and
// pod-ID offsets on the way out. Arrival times are strictly
// increasing, so the stream satisfies the trace.Stream ordering
// contract and can be merged with its siblings.
type retimeStream struct {
	src      *trace.FunctionStream
	shape    Shape
	mean     float64 // shape's mean intensity (normalizer)
	rng      *stats.Rand
	h        float64 // horizon seconds
	gapMean  float64 // base mean gap: horizon / function request count
	t        float64 // renewal clock, seconds
	fnShift  int
	podShift int
}

// Next re-times the function's next request: the gap to it scales
// inversely with the shape's local intensity, then the request's
// execution time advances the renewal clock, exactly as retime does in
// place.
func (rs *retimeStream) Next() (trace.Request, bool) {
	r, ok := rs.src.Next()
	if !ok {
		return trace.Request{}, false
	}
	x := rs.t / rs.h
	x -= math.Floor(x)
	lam := rs.shape.Rate(x) / rs.mean
	if lam < intensityFloor || math.IsNaN(lam) {
		lam = intensityFloor
	}
	rs.t += rs.rng.Exp(rs.gapMean / lam)
	r.Start = time.Duration(rs.t * float64(time.Second))
	rs.t += r.Duration.Seconds()
	r.FnID += rs.fnShift
	r.PodID += rs.podShift
	return r, true
}

// streamPlan is one tenant's reusable streaming state: its allocation,
// its generator calibration, and its shape's mean intensity. Building
// it once lets a Source re-open the scenario stream without re-running
// the calibration sweep or re-sampling the shape.
type streamPlan struct {
	pl      tenantAlloc
	cal     *trace.Calibration
	mean    float64
	podBase int
}

// streamPlans resolves and calibrates every tenant of the scenario.
func (s Scenario) streamPlans(cfg Config) ([]streamPlan, error) {
	if err := s.Validate(cfg); err != nil {
		return nil, err
	}
	plans, err := s.plan(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]streamPlan, len(plans))
	podBase := 0
	for i, pl := range plans {
		mean := meanRate(pl.shape)
		if mean <= 0 {
			mean = 1 // degenerate all-zero shape: treat as steady
		}
		out[i] = streamPlan{pl: pl, cal: trace.Calibrate(pl.gcfg), mean: mean, podBase: podBase}
		podBase += out[i].cal.Pods()
	}
	return out, nil
}

// open instantiates one fresh merged stream over calibrated plans.
func openStream(plans []streamPlan, horizon time.Duration) trace.Stream {
	h := horizon.Seconds()
	var srcs []trace.Stream
	for _, sp := range plans {
		for _, f := range sp.cal.Streams() {
			if f.Len() == 0 {
				continue // a function with no requests re-times to nothing
			}
			srcs = append(srcs, &retimeStream{
				src:      f,
				shape:    sp.pl.shape,
				mean:     sp.mean,
				rng:      stats.NewRand(mix(sp.pl.shapeSeed, uint64(f.FnID())+1)),
				h:        h,
				gapMean:  h / float64(f.Len()),
				fnShift:  sp.pl.fnBase,
				podShift: sp.podBase,
			})
		}
	}
	return trace.Merge(srcs...)
}

// Stream synthesizes the scenario's trace as a time-ordered request
// stream without materializing it: per tenant, per function, a lazy
// generator stream is wrapped in the renewal re-timer, and all streams
// merge by arrival. The emitted sequence is identical to Trace(cfg)'s,
// ties included (the merge's tenant-major, function-minor tie order is
// the order Trace's stable sorts leave simultaneous arrivals in), with
// memory bounded by tenants × functions instead of the request count.
func (s Scenario) Stream(cfg Config) (trace.Stream, error) {
	plans, err := s.streamPlans(cfg)
	if err != nil {
		return nil, err
	}
	return openStream(plans, cfg.horizon()), nil
}

// Source returns a trace.Source over the scenario — the form
// fleet.SimulateStream consumes, which opens its input once for the
// placement scan and once for the replay. Tenant resolution, the
// generator calibration sweeps, and shape-mean sampling run once, up
// front; each open only pays for lazy emission. Validation errors
// surface on open.
func (s Scenario) Source(cfg Config) trace.Source {
	plans, err := s.streamPlans(cfg)
	horizon := cfg.horizon()
	return func() (trace.Stream, error) {
		if err != nil {
			return nil, err
		}
		return openStream(plans, horizon), nil
	}
}

// Plan is a compiled scenario: tenant resolution, the per-tenant
// generator calibration sweeps, and shape-mean sampling, all run once
// at Compile time and never again. A Plan is immutable and safe for
// concurrent use — every Source opening clones the calibration's RNG
// snapshots, so openings are independent and identical — which is what
// lets the slscostd daemon share one compiled plan across jobs and the
// optimizer share one across every candidate of a sweep. The streams a
// Plan emits are bit-identical to Scenario.Stream's for the same
// Config.
type Plan struct {
	name    string
	plans   []streamPlan
	horizon time.Duration
}

// Compile resolves and calibrates the scenario under cfg. The returned
// plan amortizes the expensive planning work (the calibration sweep
// replays every generator block once); each subsequent Source opening
// pays only for lazy emission.
func (s Scenario) Compile(cfg Config) (*Plan, error) {
	plans, err := s.streamPlans(cfg)
	if err != nil {
		return nil, err
	}
	return &Plan{name: s.Name, plans: plans, horizon: cfg.horizon()}, nil
}

// Name returns the compiled scenario's name.
func (p *Plan) Name() string { return p.name }

// Source returns a re-openable stream over the compiled plan. Every
// opening yields the identical sequence Scenario.Source would emit for
// the Config the plan was compiled under.
func (p *Plan) Source() trace.Source {
	return func() (trace.Stream, error) {
		return openStream(p.plans, p.horizon), nil
	}
}
