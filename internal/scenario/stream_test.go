package scenario

import (
	"testing"

	"slscost/internal/trace"
)

// TestStreamMatchesTrace is the scenario streaming contract: for every
// catalog scenario (and a fanned-out multi-tenant derivation),
// Collect(Stream(cfg)) is bit-identical to Trace(cfg) — the lazy
// per-function re-timers plus merge reproduce the materialize-retime-
// sort path exactly.
func TestStreamMatchesTrace(t *testing.T) {
	for _, sc := range Catalog() {
		for _, tenants := range []int{1, 3} {
			cfg := DefaultConfig()
			cfg.Base.Requests = 4000
			cfg.Tenants = tenants
			want, err := sc.Trace(cfg)
			if err != nil {
				t.Fatalf("%s tenants=%d: Trace: %v", sc.Name, tenants, err)
			}
			s, err := sc.Stream(cfg)
			if err != nil {
				t.Fatalf("%s tenants=%d: Stream: %v", sc.Name, tenants, err)
			}
			got := trace.Collect(s)
			if got.Len() != want.Len() {
				t.Fatalf("%s tenants=%d: stream emitted %d requests, Trace %d",
					sc.Name, tenants, got.Len(), want.Len())
			}
			for i := range want.Requests {
				if got.Requests[i] != want.Requests[i] {
					t.Fatalf("%s tenants=%d: request %d differs:\nstream: %+v\ntrace:  %+v",
						sc.Name, tenants, i, got.Requests[i], want.Requests[i])
				}
			}
		}
	}
}

// TestStreamValidatesInput pins that Stream rejects the same malformed
// configurations Trace does, with an error rather than a panic.
func TestStreamValidatesInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Base.Requests = 0
	if _, err := (Scenario{Name: "x", Shape: Steady{}}).Stream(cfg); err == nil {
		t.Error("zero requests: expected error")
	}
	cfg = DefaultConfig()
	if _, err := (Scenario{Name: "x"}).Stream(cfg); err == nil {
		t.Error("shapeless scenario: expected error")
	}
}

// TestStreamOrdered pins the trace.Stream ordering contract on the
// scenario path, where re-timing replaces every arrival.
func TestStreamOrdered(t *testing.T) {
	sc, ok := ByName("multi-tenant")
	if !ok {
		t.Fatal("multi-tenant scenario missing")
	}
	cfg := DefaultConfig()
	cfg.Base.Requests = 5000
	s, err := sc.Stream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev, ok := s.Next()
	if !ok {
		t.Fatal("empty stream")
	}
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		if r.Start < prev.Start {
			t.Fatalf("arrival %v after %v", r.Start, prev.Start)
		}
		prev = r
	}
}

// TestPlanMatchesSource pins the compiled-plan contract: a Plan's
// openings emit the bit-identical sequence the scenario's own Source
// emits for the same Config, and repeated openings of one plan are
// identical to each other — the properties that make a daemon-cached
// plan indistinguishable from a fresh compilation.
func TestPlanMatchesSource(t *testing.T) {
	sc, ok := ByName("flash-crowd")
	if !ok {
		t.Fatal("flash-crowd missing from catalog")
	}
	cfg := DefaultConfig()
	cfg.Base.Requests = 4000
	cfg.Base.Seed = 20260613
	cfg.Tenants = 2

	plan, err := sc.Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Name() != sc.Name {
		t.Fatalf("plan name %q, want %q", plan.Name(), sc.Name)
	}
	open := func(src trace.Source) []trace.Request {
		s, err := src()
		if err != nil {
			t.Fatal(err)
		}
		var out []trace.Request
		for r, ok := s.Next(); ok; r, ok = s.Next() {
			out = append(out, r)
		}
		return out
	}
	want := open(sc.Source(cfg))
	for pass := 0; pass < 2; pass++ {
		got := open(plan.Source())
		if len(got) != len(want) {
			t.Fatalf("opening %d: %d requests, want %d", pass, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("opening %d: request %d = %+v, want %+v", pass, i, got[i], want[i])
			}
		}
	}
}
