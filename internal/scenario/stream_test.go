package scenario

import (
	"testing"

	"slscost/internal/trace"
)

// TestStreamMatchesTrace is the scenario streaming contract: for every
// catalog scenario (and a fanned-out multi-tenant derivation),
// Collect(Stream(cfg)) is bit-identical to Trace(cfg) — the lazy
// per-function re-timers plus merge reproduce the materialize-retime-
// sort path exactly.
func TestStreamMatchesTrace(t *testing.T) {
	for _, sc := range Catalog() {
		for _, tenants := range []int{1, 3} {
			cfg := DefaultConfig()
			cfg.Base.Requests = 4000
			cfg.Tenants = tenants
			want, err := sc.Trace(cfg)
			if err != nil {
				t.Fatalf("%s tenants=%d: Trace: %v", sc.Name, tenants, err)
			}
			s, err := sc.Stream(cfg)
			if err != nil {
				t.Fatalf("%s tenants=%d: Stream: %v", sc.Name, tenants, err)
			}
			got := trace.Collect(s)
			if got.Len() != want.Len() {
				t.Fatalf("%s tenants=%d: stream emitted %d requests, Trace %d",
					sc.Name, tenants, got.Len(), want.Len())
			}
			for i := range want.Requests {
				if got.Requests[i] != want.Requests[i] {
					t.Fatalf("%s tenants=%d: request %d differs:\nstream: %+v\ntrace:  %+v",
						sc.Name, tenants, i, got.Requests[i], want.Requests[i])
				}
			}
		}
	}
}

// TestStreamValidatesInput pins that Stream rejects the same malformed
// configurations Trace does, with an error rather than a panic.
func TestStreamValidatesInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Base.Requests = 0
	if _, err := (Scenario{Name: "x", Shape: Steady{}}).Stream(cfg); err == nil {
		t.Error("zero requests: expected error")
	}
	cfg = DefaultConfig()
	if _, err := (Scenario{Name: "x"}).Stream(cfg); err == nil {
		t.Error("shapeless scenario: expected error")
	}
}

// TestStreamOrdered pins the trace.Stream ordering contract on the
// scenario path, where re-timing replaces every arrival.
func TestStreamOrdered(t *testing.T) {
	sc, ok := ByName("multi-tenant")
	if !ok {
		t.Fatal("multi-tenant scenario missing")
	}
	cfg := DefaultConfig()
	cfg.Base.Requests = 5000
	s, err := sc.Stream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev, ok := s.Next()
	if !ok {
		t.Fatal("empty stream")
	}
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		if r.Start < prev.Start {
			t.Fatalf("arrival %v after %v", r.Start, prev.Start)
		}
		prev = r
	}
}
