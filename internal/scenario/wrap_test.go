package scenario

import (
	"math"
	"testing"
)

func TestShapesWrapAtPeriodEdge(t *testing.T) {
	fc := FlashCrowd{At: 0.99, Width: 0.05, Baseline: 0.1, Magnitude: 10}
	if fc.Rate(0.02) <= fc.Baseline {
		t.Errorf("flash crowd spike does not wrap past the period edge: Rate(0.02)=%v", fc.Rate(0.02))
	}
	if fc.Rate(0.5) != fc.Baseline {
		t.Errorf("baseline region affected: %v", fc.Rate(0.5))
	}
	pb := ParetoBursts{Baseline: 0.1, bursts: []burst{{center: 0.999, width: 0.02, height: 5}}}
	if pb.Rate(0.005) <= pb.Baseline {
		t.Errorf("burst does not wrap: Rate(0.005)=%v", pb.Rate(0.005))
	}
	if math.Abs(pb.Rate(0.992)-pb.Baseline-5) > 1e-12 {
		t.Errorf("burst missing on its own side: %v", pb.Rate(0.992))
	}
}
