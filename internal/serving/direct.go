package serving

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// This file implements the code/binary execution architecture of
// Figure 7(c): the user uploads a code block or precompiled module; for
// each request the engine loads (or finds cached) the module and executes
// it directly, with no listener, proxy, or polling loop between the
// ingress and the user code — the reason Cloudflare reports near-zero
// serving overhead in Figure 8.

// Module is an uploaded code artifact.
type Module struct {
	// Name identifies the module in the cache.
	Name string
	// CompileCost is the one-time JIT/load latency paid on a cache miss
	// (Cloudflare measures ≈5 ms; usually masked by TLS pre-warming).
	CompileCost time.Duration
	// Handler is the compiled entry point.
	Handler Handler
}

// Engine is the in-process execution engine with its module cache.
type Engine struct {
	mu     sync.Mutex
	cache  map[string]*Module
	loads  int
	hits   int
	closed bool
}

// NewEngine creates an empty execution engine.
func NewEngine() *Engine {
	return &Engine{cache: make(map[string]*Module)}
}

// Upload registers a module (overwriting any previous version) without
// compiling it; compilation happens lazily on first execution.
func (e *Engine) Upload(m Module) error {
	if m.Name == "" || m.Handler == nil {
		return fmt.Errorf("serving: module needs a name and handler")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	mod := m
	e.cache[m.Name] = &mod
	return nil
}

// compiled tracks whether a module instance has paid its compile cost.
var compiled sync.Map // *Module -> struct{}

// Execute runs one request against a module. The returned duration is the
// engine-measured execution time, the analogue of Cloudflare's reported
// CPU/wall time.
func (e *Engine) Execute(ctx context.Context, name string, payload []byte) (Invocation, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Invocation{}, ErrClosed
	}
	mod, ok := e.cache[name]
	e.mu.Unlock()
	if !ok {
		return Invocation{}, fmt.Errorf("serving: unknown module %q", name)
	}
	start := time.Now()
	if _, warm := compiled.LoadOrStore(mod, struct{}{}); !warm {
		// Cold: pay the JIT/load cost once per cached module instance.
		e.mu.Lock()
		e.loads++
		e.mu.Unlock()
		if mod.CompileCost > 0 {
			time.Sleep(mod.CompileCost)
		}
	} else {
		e.mu.Lock()
		e.hits++
		e.mu.Unlock()
	}
	resp, err := mod.Handler(ctx, payload)
	inv := Invocation{Duration: time.Since(start)}
	if err != nil {
		inv.Err = fmt.Errorf("serving: function error: %w", err)
		return inv, nil
	}
	inv.Response = resp
	return inv, nil
}

// CacheStats returns (cold loads, warm hits).
func (e *Engine) CacheStats() (loads, hits int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.loads, e.hits
}

// Close marks the engine closed.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// DirectDeployment is an Engine plus one uploaded module, as an Invoker.
type DirectDeployment struct {
	engine *Engine
	name   string
}

// DeployDirect deploys handler under the code/binary execution
// architecture with the given compile cost.
func DeployDirect(handler Handler, compileCost time.Duration) (*DirectDeployment, error) {
	e := NewEngine()
	if err := e.Upload(Module{Name: "fn", CompileCost: compileCost, Handler: handler}); err != nil {
		return nil, err
	}
	return &DirectDeployment{engine: e, name: "fn"}, nil
}

// Architecture returns DirectExecution.
func (d *DirectDeployment) Architecture() Architecture { return DirectExecution }

// Invoke executes the module directly.
func (d *DirectDeployment) Invoke(ctx context.Context, payload []byte) (Invocation, error) {
	return d.engine.Execute(ctx, d.name, payload)
}

// Close closes the engine.
func (d *DirectDeployment) Close() error { return d.engine.Close() }
