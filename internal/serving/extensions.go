package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// This file implements the AWS Lambda Extensions API (the
// /2020-01-01/extension endpoints) on the same RuntimeAPI server. Table 2
// notes that graceful shutdown on AWS is "supported with Lambda Extensions
// (wait for SIGTERM handling)": an extension registers for INVOKE and
// SHUTDOWN events, long-polls event/next, and the platform delays sandbox
// reclamation until registered extensions have observed SHUTDOWN.

// Extensions API paths and headers (AWS contract).
const (
	extAPIVersion     = "2020-01-01"
	extRegisterPath   = "/" + extAPIVersion + "/extension/register"
	extNextPath       = "/" + extAPIVersion + "/extension/event/next"
	headerExtName     = "Lambda-Extension-Name"
	headerExtIdentity = "Lambda-Extension-Identifier"
)

// ExtensionEventType is the event class delivered to extensions.
type ExtensionEventType string

const (
	// ExtensionInvoke is delivered for every function invocation.
	ExtensionInvoke ExtensionEventType = "INVOKE"
	// ExtensionShutdown is delivered once when the sandbox is reclaimed.
	ExtensionShutdown ExtensionEventType = "SHUTDOWN"
)

// ExtensionEvent is the JSON document served by event/next.
type ExtensionEvent struct {
	EventType      ExtensionEventType `json:"eventType"`
	RequestID      string             `json:"requestId,omitempty"`
	ShutdownReason string             `json:"shutdownReason,omitempty"`
	DeadlineMs     int64              `json:"deadlineMs"`
}

// registeredExtension is the server-side state of one extension.
type registeredExtension struct {
	id     string
	name   string
	events map[ExtensionEventType]bool
	queue  chan ExtensionEvent
	// sawShutdown flips once the SHUTDOWN event has been *delivered*.
	sawShutdown bool
}

// extensionRegistry lives inside RuntimeAPI.
type extensionRegistry struct {
	mu     sync.Mutex
	nextID int
	exts   map[string]*registeredExtension
}

func newExtensionRegistry() *extensionRegistry {
	return &extensionRegistry{exts: make(map[string]*registeredExtension)}
}

// register adds an extension subscribed to the given events.
func (r *extensionRegistry) register(name string, events []ExtensionEventType) *registeredExtension {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	ext := &registeredExtension{
		id:     fmt.Sprintf("ext-%d", r.nextID),
		name:   name,
		events: make(map[ExtensionEventType]bool, len(events)),
		queue:  make(chan ExtensionEvent, 64),
	}
	for _, e := range events {
		ext.events[e] = true
	}
	r.exts[ext.id] = ext
	return ext
}

// byID looks an extension up.
func (r *extensionRegistry) byID(id string) (*registeredExtension, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ext, ok := r.exts[id]
	return ext, ok
}

// broadcast delivers an event to every subscribed extension, dropping it
// for extensions whose queue is full (slow consumers must not stall the
// invocation path).
func (r *extensionRegistry) broadcast(ev ExtensionEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ext := range r.exts {
		if !ext.events[ev.EventType] {
			continue
		}
		select {
		case ext.queue <- ev:
		default:
		}
	}
}

// allShutdownDelivered reports whether every extension subscribed to
// SHUTDOWN has received it.
func (r *extensionRegistry) allShutdownDelivered() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ext := range r.exts {
		if ext.events[ExtensionShutdown] && !ext.sawShutdown {
			return false
		}
	}
	return true
}

// handleExtensionRegister serves POST /extension/register.
func (a *RuntimeAPI) handleExtensionRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := r.Header.Get(headerExtName)
	if name == "" {
		http.Error(w, "missing "+headerExtName, http.StatusBadRequest)
		return
	}
	var body struct {
		Events []ExtensionEventType `json:"events"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	for _, e := range body.Events {
		if e != ExtensionInvoke && e != ExtensionShutdown {
			http.Error(w, fmt.Sprintf("unknown event %q", e), http.StatusBadRequest)
			return
		}
	}
	ext := a.extensions.register(name, body.Events)
	w.Header().Set(headerExtIdentity, ext.id)
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(`{"functionName":"slscost","handler":"handler"}`)) //nolint:errcheck
}

// handleExtensionNext serves GET /extension/event/next: a blocking long
// poll for the extension's next event.
func (a *RuntimeAPI) handleExtensionNext(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := r.Header.Get(headerExtIdentity)
	ext, ok := a.extensions.byID(id)
	if !ok {
		http.Error(w, "unknown extension identifier", http.StatusForbidden)
		return
	}
	select {
	case ev := <-ext.queue:
		if ev.EventType == ExtensionShutdown {
			a.extensions.mu.Lock()
			ext.sawShutdown = true
			a.extensions.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ev) //nolint:errcheck
	case <-r.Context().Done():
		http.Error(w, "client gone", http.StatusRequestTimeout)
	}
}

// notifyExtensionsShutdown broadcasts SHUTDOWN and waits (bounded by ctx)
// for every subscribed extension to receive it — the "wait for SIGTERM
// handling" of Table 2.
func (a *RuntimeAPI) notifyExtensionsShutdown(ctx context.Context, reason string) error {
	a.extensions.broadcast(ExtensionEvent{
		EventType:      ExtensionShutdown,
		ShutdownReason: reason,
		DeadlineMs:     time.Now().Add(2 * time.Second).UnixMilli(),
	})
	for !a.extensions.allShutdownDelivered() {
		select {
		case <-ctx.Done():
			return fmt.Errorf("serving: extension shutdown: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// ExtensionClient is the extension-side helper: it registers with the
// Runtime API and runs a polling loop delivering events to a callback,
// mirroring how real Lambda extensions are written.
type ExtensionClient struct {
	api    string
	id     string
	client *http.Client
	stop   chan struct{}
	done   sync.WaitGroup
}

// StartExtension registers an extension for the given events and starts
// its event loop. The callback runs sequentially; returning from a
// SHUTDOWN event ends the loop.
func StartExtension(apiURL, name string, events []ExtensionEventType, onEvent func(ExtensionEvent)) (*ExtensionClient, error) {
	body, err := json.Marshal(map[string][]ExtensionEventType{"events": events})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, apiURL+extRegisterPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set(headerExtName, name)
	c := &http.Client{}
	resp, err := c.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serving: extension register: %w", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serving: extension register: status %d", resp.StatusCode)
	}
	id := resp.Header.Get(headerExtIdentity)
	if id == "" {
		return nil, fmt.Errorf("serving: extension register: missing identifier")
	}
	ec := &ExtensionClient{api: apiURL, id: id, client: c, stop: make(chan struct{})}
	ec.done.Add(1)
	go ec.loop(onEvent)
	return ec, nil
}

// ID returns the platform-assigned extension identifier.
func (ec *ExtensionClient) ID() string { return ec.id }

func (ec *ExtensionClient) loop(onEvent func(ExtensionEvent)) {
	defer ec.done.Done()
	for {
		select {
		case <-ec.stop:
			return
		default:
		}
		req, err := http.NewRequest(http.MethodGet, ec.api+extNextPath, nil)
		if err != nil {
			return
		}
		req.Header.Set(headerExtIdentity, ec.id)
		resp, err := ec.client.Do(req)
		if err != nil {
			select {
			case <-ec.stop:
				return
			default:
			}
			time.Sleep(time.Millisecond)
			continue
		}
		var ev ExtensionEvent
		decodeErr := json.NewDecoder(resp.Body).Decode(&ev)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decodeErr != nil {
			time.Sleep(time.Millisecond)
			continue
		}
		onEvent(ev)
		if ev.EventType == ExtensionShutdown {
			return
		}
	}
}

// Stop terminates the event loop without waiting for SHUTDOWN.
func (ec *ExtensionClient) Stop() {
	close(ec.stop)
	ec.client.CloseIdleConnections()
}

// Wait blocks until the event loop exits (after SHUTDOWN or Stop).
func (ec *ExtensionClient) Wait() { ec.done.Wait() }
