package serving

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestExtensionReceivesInvokeEvents: a registered extension observes one
// INVOKE event per function invocation, with matching request ids.
func TestExtensionReceivesInvokeEvents(t *testing.T) {
	d, err := DeployPolling(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var mu sync.Mutex
	var got []ExtensionEvent
	ext, err := StartExtension(d.api.URL(), "telemetry",
		[]ExtensionEventType{ExtensionInvoke, ExtensionShutdown},
		func(ev ExtensionEvent) {
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Stop()
	if ext.ID() == "" {
		t.Fatal("no extension identifier assigned")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := d.Invoke(ctx, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		count := len(got)
		mu.Unlock()
		if count >= n || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("extension saw %d events, want %d", len(got), n)
	}
	seen := map[string]bool{}
	for _, ev := range got {
		if ev.EventType != ExtensionInvoke {
			t.Fatalf("unexpected event %q", ev.EventType)
		}
		if ev.RequestID == "" || seen[ev.RequestID] {
			t.Fatalf("bad or duplicate request id %q", ev.RequestID)
		}
		seen[ev.RequestID] = true
	}
}

// TestExtensionShutdownDelivery: Shutdown waits until the extension has
// received its SHUTDOWN event (Table 2's graceful column).
func TestExtensionShutdownDelivery(t *testing.T) {
	d, err := DeployPolling(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	var sawShutdown bool
	var mu sync.Mutex
	ext, err := StartExtension(d.api.URL(), "flusher",
		[]ExtensionEventType{ExtensionShutdown},
		func(ev ExtensionEvent) {
			mu.Lock()
			defer mu.Unlock()
			if ev.EventType == ExtensionShutdown {
				if ev.ShutdownReason == "" {
					t.Error("missing shutdown reason")
				}
				sawShutdown = true
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := d.Invoke(ctx, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := d.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ext.Wait() // loop exits after SHUTDOWN
	mu.Lock()
	defer mu.Unlock()
	if !sawShutdown {
		t.Fatal("extension never received SHUTDOWN")
	}
}

// TestExtensionInvokeOnlySubscription: an INVOKE-only extension never
// blocks shutdown.
func TestExtensionInvokeOnlySubscription(t *testing.T) {
	d, err := DeployPolling(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := StartExtension(d.api.URL(), "invoke-only",
		[]ExtensionEventType{ExtensionInvoke}, func(ExtensionEvent) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown blocked by an INVOKE-only extension: %v", err)
	}
}

func TestExtensionRegisterValidation(t *testing.T) {
	api, err := NewRuntimeAPI()
	if err != nil {
		t.Fatal(err)
	}
	defer api.Close()

	post := func(name, body string) int {
		req, err := http.NewRequest(http.MethodPost, api.URL()+extRegisterPath,
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		if name != "" {
			req.Header.Set(headerExtName, name)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("", `{"events":["INVOKE"]}`); code != http.StatusBadRequest {
		t.Errorf("missing name: status %d", code)
	}
	if code := post("x", `not json`); code != http.StatusBadRequest {
		t.Errorf("bad body: status %d", code)
	}
	if code := post("x", `{"events":["BOGUS"]}`); code != http.StatusBadRequest {
		t.Errorf("unknown event: status %d", code)
	}
	if code := post("x", `{"events":["INVOKE","SHUTDOWN"]}`); code != http.StatusOK {
		t.Errorf("valid registration: status %d", code)
	}
	// event/next with an unknown identifier is rejected.
	req, _ := http.NewRequest(http.MethodGet, api.URL()+extNextPath, nil)
	req.Header.Set(headerExtIdentity, "nope")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("unknown identifier: status %d", resp.StatusCode)
	}
}

func TestStartExtensionAgainstDeadAPI(t *testing.T) {
	if _, err := StartExtension("http://127.0.0.1:1", "x",
		[]ExtensionEventType{ExtensionInvoke}, func(ExtensionEvent) {}); err == nil {
		t.Fatal("registration against a dead API should fail")
	}
}
