package serving

import (
	"bytes"
	"net/http"
)

// newPost issues a plain POST for tests that poke the raw Runtime API.
func newPost(url string, body []byte) (*http.Response, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	return resp, nil
}
