package serving

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the HTTP server architecture of Figure 7(b): the
// user function runs a standard HTTP server on a port, and a queue-proxy
// sidecar (as in Knative, which Azure/GCP/IBM build on) receives requests
// from the ingress, enforces the container concurrency limit, records the
// scaling metrics, and reverse-proxies to the user server.

// HTTPFunction adapts a Handler into the user-side HTTP server: the
// standard "HTTP handler wrapping the user logic" of the model.
type HTTPFunction struct {
	handler Handler
}

// ServeHTTP implements http.Handler.
func (f *HTTPFunction) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	payload, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	resp, err := f.handler(r.Context(), payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(resp) //nolint:errcheck
}

// QueueProxyStats are the metrics the autoscaler scrapes from the
// queue-proxy in Knative-style platforms.
type QueueProxyStats struct {
	// Requests is the number of proxied requests.
	Requests int64
	// Rejected is the number of requests rejected at the concurrency gate.
	Rejected int64
	// InFlight is the current concurrency.
	InFlight int64
}

// QueueProxy is the sidecar between the ingress and the user HTTP server.
type QueueProxy struct {
	target      string
	client      *http.Client
	gate        chan struct{}
	server      *http.Server
	listener    net.Listener
	requests    atomic.Int64
	rejected    atomic.Int64
	inFlight    atomic.Int64
	concurrency int
}

// NewQueueProxy starts a queue-proxy in front of targetURL with the given
// container concurrency limit (0 means unlimited — Knative's default of
// unbounded soft concurrency).
func NewQueueProxy(targetURL string, concurrency int) (*QueueProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("serving: queue-proxy listen: %w", err)
	}
	qp := &QueueProxy{
		target:      targetURL,
		client:      &http.Client{},
		concurrency: concurrency,
	}
	if concurrency > 0 {
		qp.gate = make(chan struct{}, concurrency)
	}
	qp.listener = ln
	qp.server = &http.Server{Handler: http.HandlerFunc(qp.proxy)}
	go qp.server.Serve(ln) //nolint:errcheck
	return qp, nil
}

// URL returns the proxy's base URL.
func (qp *QueueProxy) URL() string { return "http://" + qp.listener.Addr().String() }

// Stats returns a snapshot of the proxy metrics.
func (qp *QueueProxy) Stats() QueueProxyStats {
	return QueueProxyStats{
		Requests: qp.requests.Load(),
		Rejected: qp.rejected.Load(),
		InFlight: qp.inFlight.Load(),
	}
}

// proxy forwards one request to the user server, enforcing concurrency.
func (qp *QueueProxy) proxy(w http.ResponseWriter, r *http.Request) {
	if qp.gate != nil {
		select {
		case qp.gate <- struct{}{}:
			defer func() { <-qp.gate }()
		case <-r.Context().Done():
			qp.rejected.Add(1)
			http.Error(w, "request cancelled in queue", http.StatusServiceUnavailable)
			return
		}
	}
	qp.requests.Add(1)
	qp.inFlight.Add(1)
	defer qp.inFlight.Add(-1)

	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, qp.target+r.URL.Path,
		bytes.NewReader(body))
	if err != nil {
		http.Error(w, "build upstream request", http.StatusInternalServerError)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := qp.client.Do(req)
	if err != nil {
		http.Error(w, "upstream unavailable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck
}

// Close shuts the proxy down.
func (qp *QueueProxy) Close() error {
	qp.client.CloseIdleConnections()
	return qp.server.Close()
}

// HTTPDeployment is a user HTTP server behind a queue-proxy, as one
// Knative-style sandbox.
type HTTPDeployment struct {
	userServer *http.Server
	userLn     net.Listener
	proxy      *QueueProxy
	client     *http.Client
	mu         sync.Mutex
	closed     bool
}

// DeployHTTPServer deploys handler under the HTTP server architecture
// with the given container concurrency limit.
func DeployHTTPServer(handler Handler, concurrency int) (*HTTPDeployment, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("serving: user server listen: %w", err)
	}
	us := &http.Server{Handler: &HTTPFunction{handler: handler}}
	go us.Serve(ln) //nolint:errcheck
	proxy, err := NewQueueProxy("http://"+ln.Addr().String(), concurrency)
	if err != nil {
		us.Close()
		return nil, err
	}
	return &HTTPDeployment{
		userServer: us,
		userLn:     ln,
		proxy:      proxy,
		client:     &http.Client{},
	}, nil
}

// Architecture returns HTTPServer.
func (d *HTTPDeployment) Architecture() Architecture { return HTTPServer }

// Stats exposes the queue-proxy metrics.
func (d *HTTPDeployment) Stats() QueueProxyStats { return d.proxy.Stats() }

// Invoke sends one request through the ingress path: queue-proxy → user
// HTTP server → back. The reported duration covers the full proxied
// round trip, which is what providers using this architecture bill.
func (d *HTTPDeployment) Invoke(ctx context.Context, payload []byte) (Invocation, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return Invocation{}, ErrClosed
	}
	d.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.proxy.URL()+"/",
		bytes.NewReader(payload))
	if err != nil {
		return Invocation{}, err
	}
	start := time.Now()
	resp, err := d.client.Do(req)
	if err != nil {
		return Invocation{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	inv := Invocation{Duration: time.Since(start)}
	if err != nil {
		return inv, err
	}
	if resp.StatusCode != http.StatusOK {
		inv.Err = fmt.Errorf("serving: function error: status %d: %s",
			resp.StatusCode, bytes.TrimSpace(body))
		return inv, nil
	}
	inv.Response = body
	return inv, nil
}

// Close shuts down the proxy and user server.
func (d *HTTPDeployment) Close() error {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.client.CloseIdleConnections()
	perr := d.proxy.Close()
	uerr := d.userServer.Close()
	if perr != nil {
		return perr
	}
	return uerr
}
