package serving

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file adds the ingress/load-balancer tier of Figure 7(b): in the
// HTTP-server architecture, requests traverse an ingress that spreads them
// across replica sandboxes, each fronted by its own queue-proxy. The extra
// hop is part of the per-request overhead §3.2 attributes to the model.

// HTTPPool is a replicated HTTP-server deployment behind a round-robin
// ingress.
type HTTPPool struct {
	replicas []*HTTPDeployment
	next     atomic.Uint64
	perRep   []atomic.Int64
	mu       sync.Mutex
	closed   bool
}

// DeployHTTPServerPool deploys handler on n replicas, each behind its own
// queue-proxy with the given per-replica concurrency limit.
func DeployHTTPServerPool(handler Handler, n, concurrency int) (*HTTPPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serving: pool needs at least one replica")
	}
	pool := &HTTPPool{perRep: make([]atomic.Int64, n)}
	for i := 0; i < n; i++ {
		d, err := DeployHTTPServer(handler, concurrency)
		if err != nil {
			pool.Close() //nolint:errcheck // best-effort cleanup
			return nil, err
		}
		pool.replicas = append(pool.replicas, d)
	}
	return pool, nil
}

// Architecture returns HTTPServer: the pool is the same serving model,
// scaled out.
func (p *HTTPPool) Architecture() Architecture { return HTTPServer }

// Replicas returns the pool size.
func (p *HTTPPool) Replicas() int { return len(p.replicas) }

// RequestsPerReplica returns how many requests each replica served.
func (p *HTTPPool) RequestsPerReplica() []int64 {
	out := make([]int64, len(p.perRep))
	for i := range p.perRep {
		out[i] = p.perRep[i].Load()
	}
	return out
}

// Invoke routes one request through the ingress (round-robin) to a
// replica's queue-proxy and user server.
func (p *HTTPPool) Invoke(ctx context.Context, payload []byte) (Invocation, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Invocation{}, ErrClosed
	}
	p.mu.Unlock()
	i := int(p.next.Add(1)-1) % len(p.replicas)
	p.perRep[i].Add(1)
	return p.replicas[i].Invoke(ctx, payload)
}

// Close tears every replica down.
func (p *HTTPPool) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	var first error
	for _, d := range p.replicas {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
