package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestHTTPPoolRoundRobin(t *testing.T) {
	pool, err := DeployHTTPServerPool(echoHandler, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Replicas() != 3 {
		t.Fatalf("replicas = %d", pool.Replicas())
	}
	ctx := context.Background()
	const n = 30
	for i := 0; i < n; i++ {
		inv, err := pool.Invoke(ctx, []byte("x"))
		if err != nil || inv.Err != nil {
			t.Fatal(err, inv.Err)
		}
		if string(inv.Response) != "echo:x" {
			t.Fatalf("response = %q", inv.Response)
		}
	}
	// Round-robin spreads requests evenly.
	for i, c := range pool.RequestsPerReplica() {
		if c != n/3 {
			t.Errorf("replica %d served %d, want %d", i, c, n/3)
		}
	}
	if pool.Architecture() != HTTPServer {
		t.Error("pool architecture mismatch")
	}
}

func TestHTTPPoolConcurrentClients(t *testing.T) {
	pool, err := DeployHTTPServerPool(echoHandler, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inv, err := pool.Invoke(context.Background(), []byte("y"))
			if err == nil && inv.Err != nil {
				err = inv.Err
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestHTTPPoolValidationAndClose(t *testing.T) {
	if _, err := DeployHTTPServerPool(echoHandler, 0, 0); err == nil {
		t.Error("zero replicas accepted")
	}
	pool, err := DeployHTTPServerPool(echoHandler, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Invoke(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("invoke after close = %v", err)
	}
}

// TestHTTPPoolOverheadComparable: the pool's per-request overhead stays in
// the HTTP-server class (above polling/direct) — the ingress hop does not
// change the Figure 8 ordering.
func TestHTTPPoolOverheadComparable(t *testing.T) {
	pool, err := DeployHTTPServerPool(MinimalHandler, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res, err := MeasureOverhead(pool, 40)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := DeployDirect(MinimalHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	dres, err := MeasureOverhead(direct, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean <= dres.Mean {
		t.Errorf("pool overhead %.4f ms not above direct %.4f ms", res.Mean, dres.Mean)
	}
}
