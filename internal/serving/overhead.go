package serving

import (
	"context"
	"fmt"
	"time"

	"slscost/internal/stats"
)

// This file is the Figure 8 probe: deploy the same minimal function under
// all three serving architectures and compare the provider-reported
// execution duration, which captures the latency the serving path itself
// adds (polling, HTTP routing, proxying, response forwarding).

// MinimalHandler is the empty function of the Figure 8 measurement: it
// returns an empty body and success immediately.
func MinimalHandler(ctx context.Context, payload []byte) ([]byte, error) {
	return []byte{}, nil
}

// OverheadResult is one architecture's measured serving overhead.
type OverheadResult struct {
	Architecture Architecture
	Samples      []float64 // reported execution durations, milliseconds
	Mean         float64
	P95          float64
}

// MeasureOverhead deploys the minimal function under the given invoker
// and measures n provider-reported execution durations, after warming the
// path with a few unrecorded requests.
func MeasureOverhead(inv Invoker, n int) (OverheadResult, error) {
	res := OverheadResult{Architecture: inv.Architecture()}
	if n <= 0 {
		n = 100
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ { // warm-up: connections, caches, pools
		if _, err := inv.Invoke(ctx, []byte(`{}`)); err != nil {
			return res, fmt.Errorf("serving: warm-up: %w", err)
		}
	}
	res.Samples = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		r, err := inv.Invoke(ctx, []byte(`{}`))
		if err != nil {
			return res, fmt.Errorf("serving: probe %d: %w", i, err)
		}
		if r.Err != nil {
			return res, fmt.Errorf("serving: probe %d: %w", i, r.Err)
		}
		res.Samples = append(res.Samples, float64(r.Duration)/float64(time.Millisecond))
	}
	res.Mean = stats.Mean(res.Samples)
	res.P95 = stats.Percentile(res.Samples, 95)
	return res, nil
}

// CompareArchitectures runs the Figure 8 probe across all three
// architectures with n samples each and returns the results in the
// figure's order (polling, HTTP server, direct execution).
func CompareArchitectures(n int) ([]OverheadResult, error) {
	polling, err := DeployPolling(MinimalHandler)
	if err != nil {
		return nil, err
	}
	defer polling.Close()
	httpDep, err := DeployHTTPServer(MinimalHandler, 0)
	if err != nil {
		return nil, err
	}
	defer httpDep.Close()
	direct, err := DeployDirect(MinimalHandler, 0)
	if err != nil {
		return nil, err
	}
	defer direct.Close()

	var out []OverheadResult
	for _, inv := range []Invoker{polling, httpDep, direct} {
		r, err := MeasureOverhead(inv, n)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", inv.Architecture(), err)
		}
		out = append(out, r)
	}
	return out, nil
}
