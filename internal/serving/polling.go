package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the API long-polling architecture of Figure 7(a):
// a faithful AWS Lambda Runtime API. The control plane (RuntimeAPI) serves
// the HTTP endpoints the real service exposes under
// /2018-06-01/runtime/..., and the runtime client (PollingRuntime) is the
// provider-supplied loop that blocking-polls the next invocation, calls
// the user handler, and posts the result back — mirroring aws-lambda-go.

// Runtime API paths and headers (AWS Lambda custom-runtime contract).
const (
	apiVersion       = "2018-06-01"
	nextPath         = "/" + apiVersion + "/runtime/invocation/next"
	responsePathFmt  = "/" + apiVersion + "/runtime/invocation/%s/response"
	errorPathFmt     = "/" + apiVersion + "/runtime/invocation/%s/error"
	initErrorPath    = "/" + apiVersion + "/runtime/init/error"
	headerRequestID  = "Lambda-Runtime-Aws-Request-Id"
	headerDeadlineMs = "Lambda-Runtime-Deadline-Ms"
	headerFuncARN    = "Lambda-Runtime-Invoked-Function-Arn"
)

// pendingInvocation tracks one event through the polling cycle.
type pendingInvocation struct {
	id       string
	payload  []byte
	enqueued time.Time
	started  time.Time // when the runtime picked it up
	done     chan Invocation
}

// RuntimeAPI is the control-plane half of the polling architecture: it
// queues invocation events and serves the Lambda Runtime API over a real
// TCP listener.
type RuntimeAPI struct {
	server   *http.Server
	listener net.Listener

	mu       sync.Mutex
	queue    chan *pendingInvocation
	inflight map[string]*pendingInvocation
	nextID   uint64
	draining bool // queue closed; pollers see 410 once it empties
	closed   bool // HTTP server shut down

	// extensions holds the Lambda Extensions API registry.
	extensions *extensionRegistry

	// InitErr records a runtime-reported initialization failure.
	initErr error
}

// NewRuntimeAPI starts a Runtime API server on a loopback port.
func NewRuntimeAPI() (*RuntimeAPI, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("serving: listen: %w", err)
	}
	api := &RuntimeAPI{
		listener:   ln,
		queue:      make(chan *pendingInvocation, 128),
		inflight:   make(map[string]*pendingInvocation),
		extensions: newExtensionRegistry(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc(nextPath, api.handleNext)
	mux.HandleFunc("/"+apiVersion+"/runtime/invocation/", api.handleResult)
	mux.HandleFunc(initErrorPath, api.handleInitError)
	mux.HandleFunc(extRegisterPath, api.handleExtensionRegister)
	mux.HandleFunc(extNextPath, api.handleExtensionNext)
	api.server = &http.Server{Handler: mux}
	go api.server.Serve(ln) //nolint:errcheck // Serve returns on Close.
	return api, nil
}

// URL returns the Runtime API base URL (http://127.0.0.1:port).
func (a *RuntimeAPI) URL() string { return "http://" + a.listener.Addr().String() }

// handleNext is GET /runtime/invocation/next: a blocking long poll that
// returns the next queued event with the Lambda headers set.
func (a *RuntimeAPI) handleNext(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	select {
	case inv, ok := <-a.queue:
		if !ok {
			http.Error(w, "runtime api closed", http.StatusGone)
			return
		}
		a.mu.Lock()
		inv.started = time.Now()
		a.inflight[inv.id] = inv
		a.mu.Unlock()
		a.extensions.broadcast(ExtensionEvent{
			EventType:  ExtensionInvoke,
			RequestID:  inv.id,
			DeadlineMs: time.Now().Add(15 * time.Minute).UnixMilli(),
		})
		w.Header().Set(headerRequestID, inv.id)
		w.Header().Set(headerDeadlineMs,
			strconv.FormatInt(time.Now().Add(15*time.Minute).UnixMilli(), 10))
		w.Header().Set(headerFuncARN, "arn:aws:lambda:local:000000000000:function:slscost")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(inv.payload) //nolint:errcheck
	case <-r.Context().Done():
		http.Error(w, "client gone", http.StatusRequestTimeout)
	}
}

// handleResult serves POST …/invocation/{id}/response and …/{id}/error.
func (a *RuntimeAPI) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var id string
	var isErr bool
	if n, err := fmt.Sscanf(r.URL.Path, "/"+apiVersion+"/runtime/invocation/%s", &id); n != 1 || err != nil {
		http.Error(w, "bad path", http.StatusNotFound)
		return
	}
	switch {
	case len(id) > len("/response") && id[len(id)-len("/response"):] == "/response":
		id = id[:len(id)-len("/response")]
	case len(id) > len("/error") && id[len(id)-len("/error"):] == "/error":
		id = id[:len(id)-len("/error")]
		isErr = true
	default:
		http.Error(w, "bad path", http.StatusNotFound)
		return
	}

	a.mu.Lock()
	inv, ok := a.inflight[id]
	if ok {
		delete(a.inflight, id)
	}
	a.mu.Unlock()
	if !ok {
		http.Error(w, "unknown request id", http.StatusNotFound)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	result := Invocation{Duration: time.Since(inv.started)}
	if isErr {
		var e runtimeError
		if jsonErr := json.Unmarshal(body, &e); jsonErr == nil && e.Message != "" {
			result.Err = fmt.Errorf("serving: function error: %s (%s)", e.Message, e.Type)
		} else {
			result.Err = fmt.Errorf("serving: function error: %s", body)
		}
	} else {
		result.Response = body
	}
	inv.done <- result
	w.WriteHeader(http.StatusAccepted)
	w.Write([]byte(`{"status":"OK"}`)) //nolint:errcheck
}

// handleInitError serves POST /runtime/init/error.
func (a *RuntimeAPI) handleInitError(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	a.mu.Lock()
	a.initErr = fmt.Errorf("serving: runtime init error: %s", body)
	a.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
}

// InitError returns the initialization error the runtime reported, if any.
func (a *RuntimeAPI) InitError() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.initErr
}

// Invoke enqueues an event and blocks until the runtime posts its result.
func (a *RuntimeAPI) Invoke(ctx context.Context, payload []byte) (Invocation, error) {
	a.mu.Lock()
	if a.closed || a.draining {
		a.mu.Unlock()
		return Invocation{}, ErrClosed
	}
	a.nextID++
	inv := &pendingInvocation{
		id:       fmt.Sprintf("req-%d", a.nextID),
		payload:  payload,
		enqueued: time.Now(),
		done:     make(chan Invocation, 1),
	}
	a.mu.Unlock()

	// Enqueue under the lock so a concurrent Drain cannot close the queue
	// between the state check and the send; retry while the buffer is full.
	for {
		a.mu.Lock()
		if a.closed || a.draining {
			a.mu.Unlock()
			return Invocation{}, ErrClosed
		}
		select {
		case a.queue <- inv:
			a.mu.Unlock()
			goto queued
		default:
			a.mu.Unlock()
		}
		select {
		case <-ctx.Done():
			return Invocation{}, ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
queued:
	select {
	case res := <-inv.done:
		return res, nil
	case <-ctx.Done():
		return Invocation{}, ctx.Err()
	}
}

// Drain begins graceful shutdown: new Invoke calls are rejected, queued
// and in-flight invocations run to completion, and polling runtimes then
// observe 410 Gone (triggering their SIGTERM handlers). Drain returns when
// the API is idle or ctx expires.
func (a *RuntimeAPI) Drain(ctx context.Context) error {
	a.mu.Lock()
	if !a.draining {
		a.draining = true
		close(a.queue) // pollers past the queued events see 410
	}
	a.mu.Unlock()
	for {
		a.mu.Lock()
		idle := len(a.inflight) == 0 && len(a.queue) == 0
		a.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serving: drain: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// Close shuts the Runtime API server down.
func (a *RuntimeAPI) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	return a.server.Close()
}

// runtimeError is the Lambda error document posted to the error endpoint.
type runtimeError struct {
	Message string `json:"errorMessage"`
	Type    string `json:"errorType"`
}

// PollingRuntime is the in-sandbox runtime program: an infinite loop that
// long-polls the Runtime API for the next event, calls the user handler,
// and posts back the response or error.
type PollingRuntime struct {
	api     string
	handler Handler
	client  *http.Client
	stop    chan struct{}
	stopped sync.WaitGroup

	// onShutdown, when set, runs once when the runtime observes the API
	// draining (HTTP 410) — the SIGTERM handler a Lambda extension waits
	// for (Table 2's graceful-shutdown column).
	onShutdown   func()
	shutdownOnce sync.Once
	shutdownDone atomic.Bool
}

// shutdownRan reports whether the SIGTERM path has executed (true also
// when no handler was registered but the drain was observed).
func (rt *PollingRuntime) shutdownRan() bool { return rt.shutdownDone.Load() }

// StartPollingRuntime launches the runtime loop against the given Runtime
// API base URL, mirroring lambda.Start(handler).
func StartPollingRuntime(apiURL string, handler Handler) *PollingRuntime {
	rt := &PollingRuntime{
		api:     apiURL,
		handler: handler,
		client:  &http.Client{},
		stop:    make(chan struct{}),
	}
	rt.stopped.Add(1)
	go rt.loop()
	return rt
}

// OnShutdown registers a SIGTERM-style handler invoked once when the
// Runtime API drains. It must be called before the drain begins.
func (rt *PollingRuntime) OnShutdown(fn func()) { rt.onShutdown = fn }

func (rt *PollingRuntime) loop() {
	defer rt.stopped.Done()
	for {
		select {
		case <-rt.stop:
			return
		default:
		}
		id, payload, err := rt.next()
		if err != nil {
			select {
			case <-rt.stop:
				return
			default:
			}
			if errors.Is(err, errAPIDraining) {
				// The platform is reclaiming the sandbox: run the SIGTERM
				// handler and exit the loop (graceful shutdown).
				rt.shutdownOnce.Do(func() {
					if rt.onShutdown != nil {
						rt.onShutdown()
					}
					rt.shutdownDone.Store(true)
				})
				return
			}
			// Transient polling failure: back off briefly and retry, as
			// the real runtime interface client does.
			time.Sleep(time.Millisecond)
			continue
		}
		resp, herr := rt.handler(context.Background(), payload)
		if herr != nil {
			rt.post(fmt.Sprintf(errorPathFmt, id), mustJSON(runtimeError{
				Message: herr.Error(), Type: "HandlerError",
			}))
			continue
		}
		rt.post(fmt.Sprintf(responsePathFmt, id), resp)
	}
}

// errAPIDraining signals that the Runtime API returned 410 Gone: the
// control plane is reclaiming the sandbox.
var errAPIDraining = errors.New("serving: runtime api draining")

// next long-polls GET /runtime/invocation/next.
func (rt *PollingRuntime) next() (id string, payload []byte, err error) {
	resp, err := rt.client.Get(rt.api + nextPath)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return "", nil, errAPIDraining
	}
	if resp.StatusCode != http.StatusOK {
		return "", nil, fmt.Errorf("serving: next: status %d", resp.StatusCode)
	}
	id = resp.Header.Get(headerRequestID)
	if id == "" {
		return "", nil, fmt.Errorf("serving: next: missing request id header")
	}
	payload, err = io.ReadAll(resp.Body)
	return id, payload, err
}

func (rt *PollingRuntime) post(path string, body []byte) {
	resp, err := rt.client.Post(rt.api+path, "application/json", bytes.NewReader(body))
	if err == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
}

// Stop terminates the polling loop. In-flight polls are abandoned.
func (rt *PollingRuntime) Stop() {
	close(rt.stop)
	rt.client.CloseIdleConnections()
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// PollingDeployment bundles a Runtime API and its runtime loop into an
// Invoker.
type PollingDeployment struct {
	api *RuntimeAPI
	rt  *PollingRuntime
}

// DeployPolling deploys handler under the API long-polling architecture.
func DeployPolling(handler Handler) (*PollingDeployment, error) {
	api, err := NewRuntimeAPI()
	if err != nil {
		return nil, err
	}
	rt := StartPollingRuntime(api.URL(), handler)
	return &PollingDeployment{api: api, rt: rt}, nil
}

// Runtime exposes the deployment's runtime loop (for SIGTERM handler
// registration via OnShutdown).
func (d *PollingDeployment) Runtime() *PollingRuntime { return d.rt }

// Shutdown gracefully reclaims the deployment, Table 2's AWS row: stop
// accepting requests, finish in-flight work, let the runtime observe the
// drain and run its SIGTERM handler, then tear the servers down.
func (d *PollingDeployment) Shutdown(ctx context.Context) error {
	if err := d.api.Drain(ctx); err != nil {
		d.api.Close() //nolint:errcheck // best-effort teardown on timeout
		return err
	}
	// Registered extensions receive SHUTDOWN and are waited for — the
	// Lambda-Extensions mechanism behind Table 2's graceful column.
	if err := d.api.notifyExtensionsShutdown(ctx, "spindown"); err != nil {
		d.api.Close() //nolint:errcheck
		return err
	}
	// Give the poller a moment to observe 410 and run its handler.
	deadline := time.Now().Add(time.Second)
	for !d.rt.shutdownRan() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d.rt.Stop()
	return d.api.Close()
}

// Architecture returns APIPolling.
func (d *PollingDeployment) Architecture() Architecture { return APIPolling }

// Invoke runs one request through the runtime API and polling loop.
func (d *PollingDeployment) Invoke(ctx context.Context, payload []byte) (Invocation, error) {
	return d.api.Invoke(ctx, payload)
}

// Close stops the runtime loop and the API server.
func (d *PollingDeployment) Close() error {
	d.rt.Stop()
	return d.api.Close()
}
