// Package serving implements the three mainstream serverless request
// serving architectures of Figure 7, as real programs over net/http:
//
//   - API long polling (AWS Lambda): a faithful Lambda Runtime API server
//     and the runtime client loop that polls it (polling.go).
//   - HTTP server (Azure/GCP/Knative): user code as an http.Handler behind
//     a queue-proxy sidecar (httpserver.go).
//   - Code/binary execution (Cloudflare Workers): handlers invoked
//     directly from an in-process module cache (direct.go).
//
// Each architecture exposes the same Invoker interface so the Figure 8
// overhead probe can deploy one minimal function under all three and
// compare the provider-reported execution duration.
package serving

import (
	"context"
	"errors"
	"time"
)

// Architecture names the serving architectures of Figure 7.
type Architecture string

const (
	// APIPolling is the runtime-API long-polling model (AWS Lambda).
	APIPolling Architecture = "api-polling"
	// HTTPServer is the HTTP server + queue-proxy model (Azure, GCP,
	// IBM, Knative).
	HTTPServer Architecture = "http-server"
	// DirectExecution is the code/binary execution model (Cloudflare).
	DirectExecution Architecture = "direct-execution"
)

// Handler is the user function: it receives a request payload and returns
// a response payload. It mirrors aws-lambda-go's simplest handler form.
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// Invocation is the provider-side record of one served request.
type Invocation struct {
	// Response is the user function's output.
	Response []byte
	// Duration is the execution duration the provider reports (and
	// bills): the time between handing the event to the runtime and
	// receiving its response, including all serving-architecture overhead.
	Duration time.Duration
	// Err is the user function's error, if any.
	Err error
}

// Invoker is a deployed function under some serving architecture.
type Invoker interface {
	// Architecture identifies the serving model.
	Architecture() Architecture
	// Invoke runs one request through the full serving path.
	Invoke(ctx context.Context, payload []byte) (Invocation, error)
	// Close releases servers and sockets.
	Close() error
}

// ErrClosed is returned when invoking a closed deployment.
var ErrClosed = errors.New("serving: deployment closed")
