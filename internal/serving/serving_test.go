package serving

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func echoHandler(ctx context.Context, payload []byte) ([]byte, error) {
	return append([]byte("echo:"), payload...), nil
}

func failingHandler(ctx context.Context, payload []byte) ([]byte, error) {
	return nil, errors.New("boom")
}

func TestPollingRoundTrip(t *testing.T) {
	d, err := DeployPolling(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		inv, err := d.Invoke(ctx, []byte(fmt.Sprintf("p%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if inv.Err != nil {
			t.Fatal(inv.Err)
		}
		if string(inv.Response) != fmt.Sprintf("echo:p%d", i) {
			t.Fatalf("response = %q", inv.Response)
		}
		if inv.Duration <= 0 {
			t.Fatal("non-positive reported duration")
		}
	}
	if d.Architecture() != APIPolling {
		t.Error("architecture mismatch")
	}
}

func TestPollingHandlerErrorPath(t *testing.T) {
	d, err := DeployPolling(failingHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	inv, err := d.Invoke(ctx, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if inv.Err == nil || !strings.Contains(inv.Err.Error(), "boom") {
		t.Fatalf("expected handler error through the error endpoint, got %v", inv.Err)
	}
	// The deployment survives the error and keeps serving.
	inv2, err := d.Invoke(ctx, []byte(`{}`))
	if err != nil || inv2.Err == nil {
		t.Fatalf("second invoke after error: %v, %v", err, inv2.Err)
	}
}

func TestPollingConcurrentInvokes(t *testing.T) {
	d, err := DeployPolling(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const n = 20
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			inv, err := d.Invoke(ctx, []byte(fmt.Sprintf("c%d", i)))
			if err == nil && inv.Err != nil {
				err = inv.Err
			}
			if err == nil && string(inv.Response) != fmt.Sprintf("echo:c%d", i) {
				err = fmt.Errorf("wrong response %q", inv.Response)
			}
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPollingInvokeAfterClose(t *testing.T) {
	d, err := DeployPolling(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := d.Invoke(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("invoke after close = %v, want ErrClosed", err)
	}
}

func TestPollingContextCancellation(t *testing.T) {
	// A runtime that never picks events up: the API alone, no loop.
	api, err := NewRuntimeAPI()
	if err != nil {
		t.Fatal(err)
	}
	defer api.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := api.Invoke(ctx, []byte(`{}`)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expected deadline error, got %v", err)
	}
}

func TestHTTPServerRoundTrip(t *testing.T) {
	d, err := DeployHTTPServer(echoHandler, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	inv, err := d.Invoke(ctx, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if inv.Err != nil {
		t.Fatal(inv.Err)
	}
	if string(inv.Response) != "echo:hi" {
		t.Fatalf("response = %q", inv.Response)
	}
	if d.Architecture() != HTTPServer {
		t.Error("architecture mismatch")
	}
	st := d.Stats()
	if st.Requests != 1 || st.InFlight != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHTTPServerErrorPath(t *testing.T) {
	d, err := DeployHTTPServer(failingHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	inv, err := d.Invoke(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if inv.Err == nil || !strings.Contains(inv.Err.Error(), "boom") {
		t.Fatalf("expected error surfaced through HTTP 500, got %v", inv.Err)
	}
}

func TestHTTPServerConcurrencyGate(t *testing.T) {
	block := make(chan struct{})
	slow := func(ctx context.Context, payload []byte) ([]byte, error) {
		<-block
		return []byte("done"), nil
	}
	d, err := DeployHTTPServer(slow, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// First request occupies the single slot.
	first := make(chan error, 1)
	go func() {
		_, err := d.Invoke(context.Background(), nil)
		first <- err
	}()
	// Give the first request time to reach the user server.
	deadline := time.Now().Add(2 * time.Second)
	for d.Stats().InFlight == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := d.Stats().InFlight; got != 1 {
		t.Fatalf("in-flight = %d, want 1", got)
	}
	// Second request waits at the gate and gives up.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	inv, err := d.Invoke(ctx, nil)
	if err == nil && inv.Err == nil {
		t.Fatal("second request should have been gated")
	}
	close(block)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
}

func TestHTTPServerInvokeAfterClose(t *testing.T) {
	d, err := DeployHTTPServer(echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := d.Invoke(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("invoke after close = %v, want ErrClosed", err)
	}
}

func TestDirectExecution(t *testing.T) {
	d, err := DeployDirect(echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	inv, err := d.Invoke(context.Background(), []byte("x"))
	if err != nil || inv.Err != nil {
		t.Fatal(err, inv.Err)
	}
	if string(inv.Response) != "echo:x" {
		t.Fatalf("response = %q", inv.Response)
	}
	if d.Architecture() != DirectExecution {
		t.Error("architecture mismatch")
	}
}

func TestDirectExecutionErrorPath(t *testing.T) {
	d, err := DeployDirect(failingHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	inv, err := d.Invoke(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Err == nil {
		t.Fatal("expected function error")
	}
}

func TestDirectEngineCompileOncePerModule(t *testing.T) {
	e := NewEngine()
	if err := e.Upload(Module{Name: "m", CompileCost: 5 * time.Millisecond,
		Handler: echoHandler}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := e.Execute(ctx, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Execute(ctx, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Duration < 5*time.Millisecond {
		t.Errorf("cold execution %v should include the compile cost", first.Duration)
	}
	if second.Duration >= 5*time.Millisecond {
		t.Errorf("warm execution %v should skip the compile cost", second.Duration)
	}
	loads, hits := e.CacheStats()
	if loads != 1 || hits != 1 {
		t.Errorf("cache stats = %d loads, %d hits", loads, hits)
	}
	if _, err := e.Execute(ctx, "unknown", nil); err == nil {
		t.Error("unknown module should fail")
	}
	if err := e.Upload(Module{}); err == nil {
		t.Error("empty module should be rejected")
	}
	e.Close()
	if _, err := e.Execute(ctx, "m", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("execute after close = %v", err)
	}
	if err := e.Upload(Module{Name: "n", Handler: echoHandler}); !errors.Is(err, ErrClosed) {
		t.Errorf("upload after close = %v", err)
	}
}

// TestFigure8Ordering is the paper's Figure 8 shape: the HTTP server
// architecture has the highest serving overhead, API polling sits in the
// middle with a stable ~1 ms-scale cost, and direct execution is near
// zero.
func TestFigure8Ordering(t *testing.T) {
	results, err := CompareArchitectures(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	byArch := map[Architecture]OverheadResult{}
	for _, r := range results {
		byArch[r.Architecture] = r
	}
	httpMean := byArch[HTTPServer].Mean
	pollMean := byArch[APIPolling].Mean
	directMean := byArch[DirectExecution].Mean
	if !(httpMean > pollMean) {
		t.Errorf("HTTP overhead %.3f ms not above polling %.3f ms", httpMean, pollMean)
	}
	if !(pollMean > directMean) {
		t.Errorf("polling overhead %.3f ms not above direct %.3f ms", pollMean, directMean)
	}
	if directMean > 0.5 {
		t.Errorf("direct execution overhead %.3f ms, want near zero", directMean)
	}
}

func TestMeasureOverheadDefaultSamples(t *testing.T) {
	d, err := DeployDirect(MinimalHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, err := MeasureOverhead(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) != 100 {
		t.Errorf("default sample count = %d", len(r.Samples))
	}
}

func TestRuntimeAPIInitError(t *testing.T) {
	api, err := NewRuntimeAPI()
	if err != nil {
		t.Fatal(err)
	}
	defer api.Close()
	resp, err := api.URL()+"", error(nil)
	_ = resp
	_ = err
	// Post an init error the way a crashing runtime would.
	req, err := newPost(api.URL()+initErrorPath, []byte(`{"errorMessage":"bad init","errorType":"Init"}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.StatusCode != 202 {
		t.Fatalf("init error status = %d", req.StatusCode)
	}
	if api.InitError() == nil {
		t.Fatal("init error not recorded")
	}
}

func TestRuntimeAPIRejectsBadPaths(t *testing.T) {
	api, err := NewRuntimeAPI()
	if err != nil {
		t.Fatal(err)
	}
	defer api.Close()
	// Unknown request id.
	resp, err := newPost(api.URL()+fmt.Sprintf(responsePathFmt, "nope"), []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("unknown id status = %d, want 404", resp.StatusCode)
	}
	// Bad suffix.
	resp, err = newPost(api.URL()+"/"+apiVersion+"/runtime/invocation/abc/bogus", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("bad suffix status = %d, want 404", resp.StatusCode)
	}
}
