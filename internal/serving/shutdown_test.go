package serving

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestGracefulShutdownRunsSIGTERMHandler exercises Table 2's AWS row: a
// drain lets in-flight work finish and the runtime's SIGTERM handler run
// before teardown.
func TestGracefulShutdownRunsSIGTERMHandler(t *testing.T) {
	var sigterm atomic.Bool
	release := make(chan struct{})
	slow := func(ctx context.Context, payload []byte) ([]byte, error) {
		<-release
		return []byte("done"), nil
	}
	d, err := DeployPolling(slow)
	if err != nil {
		t.Fatal(err)
	}
	d.Runtime().OnShutdown(func() { sigterm.Store(true) })

	// Start an in-flight request.
	resCh := make(chan Invocation, 1)
	errCh := make(chan error, 1)
	go func() {
		inv, err := d.Invoke(context.Background(), []byte(`{}`))
		resCh <- inv
		errCh <- err
	}()
	// Wait until the runtime picked it up.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		d.api.mu.Lock()
		n := len(d.api.inflight)
		d.api.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Begin the graceful shutdown concurrently; it must wait for the
	// in-flight request.
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- d.Shutdown(ctx)
	}()
	// New invokes are rejected once draining begins.
	time.Sleep(20 * time.Millisecond)
	if _, err := d.Invoke(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("invoke during drain = %v, want ErrClosed", err)
	}
	if sigterm.Load() {
		t.Error("SIGTERM handler ran before in-flight work finished")
	}

	close(release)
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	inv := <-resCh
	if err := <-errCh; err != nil || inv.Err != nil {
		t.Fatalf("in-flight request failed: %v / %v", err, inv.Err)
	}
	if string(inv.Response) != "done" {
		t.Errorf("in-flight response = %q", inv.Response)
	}
	if !sigterm.Load() {
		t.Error("SIGTERM handler never ran (graceful shutdown not observed)")
	}
}

func TestShutdownIdleDeployment(t *testing.T) {
	d, err := DeployPolling(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	// Serve one request so the poller is mid-long-poll, then shut down.
	if _, err := d.Invoke(context.Background(), []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Invoke(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("invoke after shutdown = %v", err)
	}
}

func TestDrainTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	d, err := DeployPolling(func(ctx context.Context, p []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	go d.Invoke(context.Background(), nil) //nolint:errcheck // stuck on purpose
	// Wait for pickup.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		d.api.mu.Lock()
		n := len(d.api.inflight)
		d.api.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := d.api.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("drain with stuck handler = %v, want deadline exceeded", err)
	}
}

func TestDrainIdempotent(t *testing.T) {
	api, err := NewRuntimeAPI()
	if err != nil {
		t.Fatal(err)
	}
	defer api.Close()
	ctx := context.Background()
	if err := api.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := api.Drain(ctx); err != nil {
		t.Fatal(err) // second drain must not re-close the channel
	}
}
