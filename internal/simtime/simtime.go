// Package simtime provides the discrete-event simulation core used by the
// platform and scheduler simulators: a virtual clock and an event queue.
//
// The simulators in this repository model wall-clock phenomena (autoscaling
// lag, CFS period boundaries, keep-alive windows) far faster than real time
// by advancing a virtual clock from event to event. Events scheduled for
// the same instant fire in scheduling order (FIFO), which makes simulations
// deterministic.
package simtime

import (
	"container/heap"
	"time"
)

// Event is a callback scheduled to run at a virtual instant.
type Event func(now time.Duration)

type item struct {
	at   time.Duration
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	fn   Event
	idx  int
	dead bool
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	it      *item
	stopped bool
}

// Stop cancels the timer. For recurring timers it prevents all future
// runs. It reports whether a pending event was cancelled.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped {
		return false
	}
	t.stopped = true
	if t.it != nil && !t.it.dead {
		t.it.dead = true
		return true
	}
	return false
}

// Clock is a virtual clock with an event queue. The zero value is not
// usable; create one with NewClock.
type Clock struct {
	now time.Duration
	q   eventHeap
	seq uint64
}

// NewClock returns a clock starting at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Pending returns the number of events still queued (including cancelled
// events that have not been drained yet).
func (c *Clock) Pending() int { return len(c.q) }

// At schedules fn to run at virtual time at. Events in the past fire on the
// next Run/Step at the current time.
func (c *Clock) At(at time.Duration, fn Event) *Timer {
	if at < c.now {
		at = c.now
	}
	it := &item{at: at, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.q, it)
	return &Timer{it: it}
}

// After schedules fn to run d from now.
func (c *Clock) After(d time.Duration, fn Event) *Timer {
	return c.At(c.now+d, fn)
}

// Every schedules fn to run every d, starting d from now, until the
// returned Timer is stopped. fn runs before the next occurrence is queued,
// so stopping the timer inside fn prevents further runs.
func (c *Clock) Every(d time.Duration, fn Event) *Timer {
	if d <= 0 {
		panic("simtime: Every with non-positive interval")
	}
	t := &Timer{}
	var tick Event
	tick = func(now time.Duration) {
		fn(now)
		if !t.stopped {
			t.it = c.After(d, tick).it
		}
	}
	t.it = c.After(d, tick).it
	return t
}

// Step runs the single earliest event, advancing the clock to its time.
// It reports whether an event was run.
func (c *Clock) Step() bool {
	for len(c.q) > 0 {
		it := heap.Pop(&c.q).(*item)
		if it.dead {
			continue
		}
		c.now = it.at
		it.dead = true
		it.fn(c.now)
		return true
	}
	return false
}

// RunUntil runs events in order until the queue is empty or the next event
// is after deadline. The clock finishes exactly at deadline.
func (c *Clock) RunUntil(deadline time.Duration) {
	for len(c.q) > 0 {
		// Peek; heap root is the earliest event.
		root := c.q[0]
		if root.dead {
			heap.Pop(&c.q)
			continue
		}
		if root.at > deadline {
			break
		}
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// RunBefore runs events strictly earlier than deadline, leaving the
// clock at the last executed event's instant. Unlike RunUntil it never
// advances the clock to the deadline itself and never runs events
// scheduled exactly at it — the streaming cluster simulator uses this
// to interleave externally driven arrivals with queued completions
// while preserving the batch scheduler's tie order (an arrival at t
// fires before any event queued at t).
func (c *Clock) RunBefore(deadline time.Duration) {
	for len(c.q) > 0 {
		root := c.q[0]
		if root.dead {
			heap.Pop(&c.q)
			continue
		}
		if root.at >= deadline {
			break
		}
		c.Step()
	}
}

// Run drains the entire event queue. Use with care: self-rescheduling
// events (Every) make this run forever; prefer RunUntil.
func (c *Clock) Run() {
	for c.Step() {
	}
}
