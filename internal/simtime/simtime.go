// Package simtime provides the discrete-event simulation core used by the
// platform and scheduler simulators: a virtual clock and an event queue.
//
// The simulators in this repository model wall-clock phenomena (autoscaling
// lag, CFS period boundaries, keep-alive windows) far faster than real time
// by advancing a virtual clock from event to event. Events scheduled for
// the same instant fire in scheduling order (FIFO), which makes simulations
// deterministic.
//
// # Implementation
//
// The queue is a hierarchical timing wheel, not a binary heap: five levels
// of 64 slots over ~1ms virtual ticks (2^20 ns), each level spanning 64×
// the ticks of the one below, with one occupancy bitmap per level so the
// next non-empty slot is a single trailing-zeros scan away. Scheduling and
// cancelling are O(1): an event hashes to the slot of the highest 6-bit
// tick group in which its deadline differs from the cursor, and slots are
// intrusive doubly-linked FIFO chains, so a cancelled timer unlinks
// immediately instead of lingering as heap garbage. Events within the
// cursor's own tick sit in a tiny "due" binary heap ordered by
// (time, sequence) — that heap is what preserves the exact same-instant
// FIFO contract while the wheel only ever resolves time to tick
// granularity. Deadlines beyond the top level's span (~12 virtual days
// ahead) go to an overflow heap and migrate into the wheel when the
// cursor reaches them. Expired items return to a free list, so a
// steady-state simulation schedules timers without allocating.
package simtime

import (
	"math/bits"
	"time"
)

// Event is a callback scheduled to run at a virtual instant.
type Event func(now time.Duration)

// ArgEvent is the allocation-free callback form used by hot paths: the
// argument travels inside the (pooled) timer item, so callers can
// schedule a pre-bound method value instead of allocating a fresh
// closure per event.
type ArgEvent func(now time.Duration, arg any)

// Wheel geometry. A tick is 2^20 ns ≈ 1.05 virtual milliseconds; level
// L's slots each span 64^L ticks, so five levels cover 64^5 ticks
// (~12.7 virtual days) before the overflow heap takes over.
const (
	tickShift = 20
	slotBits  = 6
	slotCount = 1 << slotBits
	slotMask  = slotCount - 1
	levels    = 5
	// horizonBits is the number of tick bits the wheel resolves; a
	// deadline whose tick differs from the cursor above these bits
	// overflows.
	horizonBits = levels * slotBits
)

// Location codes for item.loc. Non-negative values encode a wheel
// position as level<<slotBits | slot.
const (
	locFree     = -1
	locDue      = -2
	locOverflow = -3
)

// item is one scheduled event. Items are pooled per clock: after firing
// or cancellation they return to a free list with their generation
// bumped, which is what invalidates stale Handles.
type item struct {
	at         time.Duration
	seq        uint64
	fn         Event
	afn        ArgEvent
	arg        any
	next, prev *item // chain links while queued in a wheel slot
	idx        int32 // heap position while in the due/overflow heap
	loc        int32 // locFree/locDue/locOverflow or level<<slotBits|slot
	gen        uint64
}

// chain is one wheel slot's FIFO of items.
type chain struct{ head, tail *item }

// Handle is a value-type reference to a scheduled event, the
// allocation-free counterpart of Timer. The zero Handle is valid and
// refers to nothing. A Handle becomes stale — Cancel returns false —
// once its event fires or is cancelled, even if the underlying pooled
// item is reused.
type Handle struct {
	it  *item
	gen uint64
}

// Active reports whether the handle still refers to a pending event.
func (h Handle) Active() bool { return h.it != nil && h.it.gen == h.gen }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	c       *Clock
	h       Handle
	stopped bool
}

// Stop cancels the timer. For recurring timers it prevents all future
// runs. It reports whether a pending event was cancelled. The cancelled
// event is removed from the queue immediately — it does not linger
// until its deadline — so cancel-heavy workloads keep the queue bounded
// by live events.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped {
		return false
	}
	t.stopped = true
	return t.c.Cancel(t.h)
}

// Clock is a virtual clock with an event queue. The zero value is not
// usable; create one with NewClock.
type Clock struct {
	now     time.Duration
	seq     uint64
	live    int
	curTick int64

	due      itemHeap // events at ticks ≤ curTick, ordered by (at, seq)
	overflow itemHeap // events beyond the wheel horizon
	occ      [levels]uint64
	wheel    [levels][slotCount]chain
	free     *item
}

// NewClock returns a clock starting at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Pending returns the number of live events queued. Cancelled events
// are removed eagerly and never counted.
func (c *Clock) Pending() int { return c.live }

// alloc takes an item from the free list or the heap.
func (c *Clock) alloc() *item {
	it := c.free
	if it == nil {
		return &item{}
	}
	c.free = it.next
	it.next = nil
	return it
}

// release returns a fired or cancelled item to the free list, bumping
// its generation so outstanding Handles go stale.
func (c *Clock) release(it *item) {
	it.gen++
	it.fn = nil
	it.afn = nil
	it.arg = nil
	it.prev = nil
	it.loc = locFree
	it.next = c.free
	c.free = it
}

// schedule queues a new event and returns its handle.
func (c *Clock) schedule(at time.Duration, fn Event, afn ArgEvent, arg any) Handle {
	if at < c.now {
		at = c.now
	}
	it := c.alloc()
	it.at = at
	it.seq = c.seq
	c.seq++
	it.fn = fn
	it.afn = afn
	it.arg = arg
	c.live++
	c.place(it)
	return Handle{it: it, gen: it.gen}
}

// place routes an item to the due heap, a wheel slot, or the overflow
// heap according to its tick's distance from the cursor.
func (c *Clock) place(it *item) {
	tick := int64(it.at) >> tickShift
	if tick <= c.curTick {
		// The cursor may sit past the item's tick when the wheel was
		// peeked ahead of the wall clock; the due heap orders by
		// (at, seq), so early items still fire in exact order.
		it.loc = locDue
		c.due.push(it)
		return
	}
	d := uint64(tick ^ c.curTick)
	level := (63 - bits.LeadingZeros64(d)) / slotBits
	if level >= levels {
		it.loc = locOverflow
		c.overflow.push(it)
		return
	}
	slot := int((tick >> (uint(level) * slotBits)) & slotMask)
	it.loc = int32(level<<slotBits | slot)
	ch := &c.wheel[level][slot]
	if ch.tail == nil {
		ch.head, ch.tail = it, it
	} else {
		it.prev = ch.tail
		ch.tail.next = it
		ch.tail = it
	}
	c.occ[level] |= 1 << uint(slot)
}

// unlink removes an item from its wheel slot chain.
func (c *Clock) unlink(it *item) {
	level := int(it.loc) >> slotBits
	slot := int(it.loc) & slotMask
	ch := &c.wheel[level][slot]
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		ch.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		ch.tail = it.prev
	}
	it.next, it.prev = nil, nil
	if ch.head == nil {
		c.occ[level] &^= 1 << uint(slot)
	}
}

// Cancel removes a pending event. It reports whether the handle still
// referred to one. Removal is eager: the event leaves its queue slot
// now, not at its deadline.
func (c *Clock) Cancel(h Handle) bool {
	it := h.it
	if it == nil || it.gen != h.gen {
		return false
	}
	switch it.loc {
	case locFree:
		return false
	case locDue:
		c.due.remove(it)
	case locOverflow:
		c.overflow.remove(it)
	default:
		c.unlink(it)
	}
	c.live--
	c.release(it)
	return true
}

// advance moves the wheel cursor to the next occupied region, migrating
// one slot's chain toward the due heap. It reports whether any events
// remain. Each call does O(1) bitmap scans; an item is re-placed at
// most once per level over its lifetime, so expiry stays amortized
// O(1).
func (c *Clock) advance() bool {
	for level := 0; level < levels; level++ {
		shift := uint(level) * slotBits
		cursor := uint((c.curTick >> shift) & slotMask)
		// Slots strictly after the cursor within the current aligned
		// block; earlier slots belong to already-passed ticks.
		mask := c.occ[level] >> (cursor + 1) << (cursor + 1)
		if mask == 0 {
			continue
		}
		s := uint(bits.TrailingZeros64(mask))
		base := c.curTick &^ (int64(1)<<((uint(level)+1)*slotBits) - 1)
		c.curTick = base | int64(s)<<shift
		ch := &c.wheel[level][s]
		it := ch.head
		ch.head, ch.tail = nil, nil
		c.occ[level] &^= 1 << s
		for it != nil {
			next := it.next
			it.next, it.prev = nil, nil
			c.place(it)
			it = next
		}
		return true
	}
	if len(c.overflow) == 0 {
		return false
	}
	// The wheel is empty: jump the cursor to the earliest overflow
	// deadline and pull everything now within the horizon back in.
	c.curTick = int64(c.overflow[0].at) >> tickShift
	for len(c.overflow) > 0 {
		t := int64(c.overflow[0].at) >> tickShift
		if uint64(t^c.curTick) >= 1<<horizonBits {
			break
		}
		c.place(c.overflow.popMin())
	}
	return true
}

// peek returns the earliest pending event without running it, cascading
// wheel slots into the due heap as needed, or nil when none remain.
// Peeking may advance the wheel cursor (never the clock itself).
func (c *Clock) peek() *item {
	for {
		if len(c.due) > 0 {
			return c.due[0]
		}
		if !c.advance() {
			return nil
		}
	}
}

// runHead pops and runs the current due-heap head, advancing the clock
// to its instant.
func (c *Clock) runHead() {
	it := c.due.popMin()
	c.live--
	c.now = it.at
	fn, afn, arg := it.fn, it.afn, it.arg
	c.release(it)
	if afn != nil {
		afn(c.now, arg)
		return
	}
	fn(c.now)
}

// At schedules fn to run at virtual time at. Events in the past fire on
// the next Run/Step at the current time.
func (c *Clock) At(at time.Duration, fn Event) *Timer {
	return &Timer{c: c, h: c.schedule(at, fn, nil, nil)}
}

// After schedules fn to run d from now.
func (c *Clock) After(d time.Duration, fn Event) *Timer {
	return c.At(c.now+d, fn)
}

// Schedule queues fn to run at virtual time at with arg, without
// allocating: the callback and argument travel inside a pooled queue
// item and the returned Handle is a value. It is the hot-path
// counterpart of At — same clamping of past deadlines, same FIFO tie
// order — for callers that schedule per-request events and would
// otherwise allocate a closure and a Timer each time.
func (c *Clock) Schedule(at time.Duration, fn ArgEvent, arg any) Handle {
	return c.schedule(at, nil, fn, arg)
}

// Every schedules fn to run every d, starting d from now, until the
// returned Timer is stopped. fn runs before the next occurrence is
// queued, so stopping the timer inside fn prevents further runs.
func (c *Clock) Every(d time.Duration, fn Event) *Timer {
	if d <= 0 {
		panic("simtime: Every with non-positive interval")
	}
	t := &Timer{c: c}
	var tick Event
	tick = func(now time.Duration) {
		fn(now)
		if !t.stopped {
			t.h = c.schedule(c.now+d, tick, nil, nil)
		}
	}
	t.h = c.schedule(c.now+d, tick, nil, nil)
	return t
}

// Step runs the single earliest event, advancing the clock to its time.
// It reports whether an event was run.
func (c *Clock) Step() bool {
	if c.peek() == nil {
		return false
	}
	c.runHead()
	return true
}

// RunUntil runs events in order until the queue is empty or the next
// event is after deadline. The clock finishes exactly at deadline.
func (c *Clock) RunUntil(deadline time.Duration) {
	for {
		it := c.peek()
		if it == nil || it.at > deadline {
			break
		}
		c.runHead()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// RunBefore runs events strictly earlier than deadline, leaving the
// clock at the last executed event's instant. Unlike RunUntil it never
// advances the clock to the deadline itself and never runs events
// scheduled exactly at it — the streaming cluster simulator uses this
// to interleave externally driven arrivals with queued completions
// while preserving the batch scheduler's tie order (an arrival at t
// fires before any event queued at t).
func (c *Clock) RunBefore(deadline time.Duration) {
	for {
		it := c.peek()
		if it == nil || it.at >= deadline {
			return
		}
		c.runHead()
	}
}

// Run drains the entire event queue. Use with care: self-rescheduling
// events (Every) make this run forever; prefer RunUntil.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// itemHeap is a binary min-heap of items ordered by (at, seq), used for
// the due set (current tick) and the far-future overflow. Items track
// their heap index, so removal by handle is O(log n).
type itemHeap []*item

func (h itemHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h itemHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = int32(i)
	h[j].idx = int32(j)
}

func (h itemHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h itemHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

func (h *itemHeap) push(it *item) {
	it.idx = int32(len(*h))
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

func (h *itemHeap) popMin() *item {
	old := *h
	it := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[0].idx = 0
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	return it
}

// remove deletes an item from an arbitrary heap position.
func (h *itemHeap) remove(it *item) {
	old := *h
	i := int(it.idx)
	n := len(old) - 1
	if i != n {
		old[i] = old[n]
		old[i].idx = int32(i)
	}
	old[n] = nil
	*h = old[:n]
	if i != n {
		h.down(i)
		h.up(i)
	}
}
