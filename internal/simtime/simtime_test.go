package simtime

import (
	"testing"
	"time"
)

func TestClockOrdering(t *testing.T) {
	c := NewClock()
	var order []int
	c.At(30*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	c.At(10*time.Millisecond, func(time.Duration) { order = append(order, 1) })
	c.At(20*time.Millisecond, func(time.Duration) { order = append(order, 2) })
	c.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if c.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestClockFIFOAtSameInstant(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Second, func(time.Duration) { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestClockAfterChaining(t *testing.T) {
	c := NewClock()
	var fired []time.Duration
	c.After(5*time.Millisecond, func(now time.Duration) {
		fired = append(fired, now)
		c.After(5*time.Millisecond, func(now time.Duration) {
			fired = append(fired, now)
		})
	})
	c.Run()
	if len(fired) != 2 || fired[0] != 5*time.Millisecond || fired[1] != 10*time.Millisecond {
		t.Fatalf("fired = %v", fired)
	}
}

func TestClockPastEventFiresNow(t *testing.T) {
	c := NewClock()
	c.After(10*time.Millisecond, func(time.Duration) {})
	c.Run()
	var at time.Duration
	c.At(1*time.Millisecond, func(now time.Duration) { at = now }) // in the past
	c.Run()
	if at != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want clamped to 10ms", at)
	}
}

func TestTimerStop(t *testing.T) {
	c := NewClock()
	fired := false
	tm := c.After(time.Second, func(time.Duration) { fired = true })
	if !tm.Stop() {
		t.Error("first Stop should report true")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	c.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	var nilTimer *Timer
	if nilTimer.Stop() {
		t.Error("nil timer Stop should be false")
	}
}

func TestEvery(t *testing.T) {
	c := NewClock()
	var ticks []time.Duration
	var tm *Timer
	tm = c.Every(100*time.Millisecond, func(now time.Duration) {
		ticks = append(ticks, now)
		if len(ticks) == 4 {
			tm.Stop()
		}
	})
	c.RunUntil(time.Second)
	if len(ticks) != 4 {
		t.Fatalf("got %d ticks, want 4", len(ticks))
	}
	for i, tk := range ticks {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if tk != want {
			t.Errorf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestEveryPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewClock().Every(0, func(time.Duration) {})
}

func TestRunUntil(t *testing.T) {
	c := NewClock()
	var fired []int
	c.At(10*time.Millisecond, func(time.Duration) { fired = append(fired, 1) })
	c.At(50*time.Millisecond, func(time.Duration) { fired = append(fired, 2) })
	c.RunUntil(20 * time.Millisecond)
	if len(fired) != 1 {
		t.Fatalf("fired = %v, want only first", fired)
	}
	if c.Now() != 20*time.Millisecond {
		t.Errorf("Now = %v, want clamp to deadline", c.Now())
	}
	c.RunUntil(time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v after full run", fired)
	}
}

func TestStepAndPending(t *testing.T) {
	c := NewClock()
	if c.Step() {
		t.Error("Step on empty queue should be false")
	}
	c.After(time.Millisecond, func(time.Duration) {})
	c.After(2*time.Millisecond, func(time.Duration) {})
	if c.Pending() != 2 {
		t.Errorf("Pending = %d", c.Pending())
	}
	if !c.Step() {
		t.Error("Step should run an event")
	}
	if c.Now() != time.Millisecond {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestStoppedEventsDrainedByRunUntil(t *testing.T) {
	c := NewClock()
	tm := c.After(time.Millisecond, func(time.Duration) { t.Error("should not fire") })
	tm.Stop()
	c.RunUntil(time.Second)
	if c.Pending() != 0 {
		t.Errorf("Pending = %d, want drained", c.Pending())
	}
}
