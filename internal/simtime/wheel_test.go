package simtime

import (
	"math/rand"
	"testing"
	"time"
)

// TestStopRemovesEagerly is the regression test for cancelled-timer
// buildup: a warm-hit-heavy keep-alive pattern — schedule an expiry,
// cancel it on the next hit, schedule the next — must keep the queue
// bounded by live timers instead of accumulating one dead item per
// cancel until the original deadlines drain.
func TestStopRemovesEagerly(t *testing.T) {
	c := NewClock()
	const sandboxes = 64
	const hits = 1000
	timers := make([]*Timer, sandboxes)
	now := time.Duration(0)
	for hit := 0; hit < hits; hit++ {
		now += time.Millisecond
		c.RunUntil(now)
		for i := range timers {
			if timers[i] != nil {
				timers[i].Stop()
			}
			timers[i] = c.At(now+10*time.Minute, func(time.Duration) {})
		}
		if got := c.Pending(); got != sandboxes {
			t.Fatalf("hit %d: Pending = %d, want %d (cancelled timers must leave the queue eagerly)", hit, got, sandboxes)
		}
	}
	if got := c.queueLen(); got != sandboxes {
		t.Fatalf("queued items = %d, want %d live", got, sandboxes)
	}
}

// queueLen counts items physically present in any queue structure, for
// tests that assert eager removal (Pending is a counter and could in
// principle lie).
func (c *Clock) queueLen() int {
	n := len(c.due) + len(c.overflow)
	for level := range c.wheel {
		for slot := range c.wheel[level] {
			for it := c.wheel[level][slot].head; it != nil; it = it.next {
				n++
			}
		}
	}
	return n
}

func TestCancelHandle(t *testing.T) {
	c := NewClock()
	fired := false
	h := c.Schedule(time.Second, func(time.Duration, any) { fired = true }, nil)
	if !h.Active() {
		t.Error("fresh handle should be active")
	}
	if !c.Cancel(h) {
		t.Error("first Cancel should report true")
	}
	if c.Cancel(h) {
		t.Error("second Cancel should report false")
	}
	if h.Active() {
		t.Error("cancelled handle should be stale")
	}
	c.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if c.Cancel(Handle{}) {
		t.Error("zero Handle Cancel should be false")
	}
}

// TestStaleHandleAfterReuse pins the generation check: once an item is
// released and reused for a new event, handles to the old event must
// not cancel the new one.
func TestStaleHandleAfterReuse(t *testing.T) {
	c := NewClock()
	h := c.Schedule(time.Millisecond, func(time.Duration, any) {}, nil)
	c.Run() // fires; item returns to the free list
	fired := false
	h2 := c.Schedule(time.Second, func(time.Duration, any) { fired = true }, nil)
	if h2.it != h.it {
		t.Skip("pool did not reuse the item; generation check not exercised")
	}
	if c.Cancel(h) {
		t.Error("stale handle cancelled a reused item")
	}
	c.Run()
	if !fired {
		t.Error("live event killed by stale handle")
	}
}

// TestScheduleArgDelivery checks the allocation-free form delivers the
// argument and the firing instant.
func TestScheduleArgDelivery(t *testing.T) {
	c := NewClock()
	type payload struct{ n int }
	p := &payload{n: 7}
	var gotNow time.Duration
	var gotArg any
	c.Schedule(3*time.Second, func(now time.Duration, arg any) {
		gotNow, gotArg = now, arg
	}, p)
	c.Run()
	if gotNow != 3*time.Second {
		t.Errorf("now = %v", gotNow)
	}
	if gotArg != p {
		t.Errorf("arg = %v, want %p", gotArg, p)
	}
}

// TestRunBeforeBoundary pins the strict-inequality contract RunBefore
// gives the streaming feed: events exactly at the deadline do not run,
// and the clock stays at the last executed event (not the deadline), so
// an arrival injected at t still precedes same-t queued events.
func TestRunBeforeBoundary(t *testing.T) {
	c := NewClock()
	var fired []int
	c.At(10*time.Millisecond, func(time.Duration) { fired = append(fired, 1) })
	c.At(20*time.Millisecond, func(time.Duration) { fired = append(fired, 2) })
	c.RunBefore(20 * time.Millisecond)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want only the strictly-earlier event", fired)
	}
	if c.Now() != 10*time.Millisecond {
		t.Errorf("Now = %v, want last event instant (not deadline)", c.Now())
	}
	// An event scheduled now, at the deadline instant, must precede the
	// already-queued deadline event: arrival-before-completion.
	c.At(20*time.Millisecond, func(time.Duration) { fired = append(fired, 3) })
	c.Run()
	if len(fired) != 3 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired = %v, want FIFO among same-instant events", fired)
	}
}

// TestFIFOAcrossWheelLevels schedules same-instant batches at deadlines
// that land in level 0, a higher level, and the overflow heap, so FIFO
// tie order is verified through cascade and overflow migration, not
// just the due heap.
func TestFIFOAcrossWheelLevels(t *testing.T) {
	deadlines := []time.Duration{
		time.Duration(1) << tickShift,                      // level 0
		time.Duration(3) << (tickShift + slotBits),         // level 1
		time.Duration(5) << (tickShift + 3*slotBits),       // level 3
		time.Duration(1)<<(tickShift+horizonBits) + 981237, // overflow
	}
	c := NewClock()
	var order []int
	id := 0
	for _, d := range deadlines {
		for i := 0; i < 8; i++ {
			n := id
			id++
			c.At(d, func(time.Duration) { order = append(order, n) })
		}
	}
	c.Run()
	if len(order) != id {
		t.Fatalf("ran %d events, want %d", len(order), id)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, order)
		}
	}
}

// refClock is the pre-wheel binary-heap implementation, kept verbatim
// as the differential oracle: dead items stay queued until their
// deadline (the old behavior), which does not affect execution order.
type refClock struct {
	now time.Duration
	seq uint64
	q   []*refItem
}

type refItem struct {
	at   time.Duration
	seq  uint64
	fn   Event
	dead bool
}

func (c *refClock) less(i, j int) bool {
	if c.q[i].at != c.q[j].at {
		return c.q[i].at < c.q[j].at
	}
	return c.q[i].seq < c.q[j].seq
}

func (c *refClock) push(it *refItem) {
	c.q = append(c.q, it)
	i := len(c.q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !c.less(i, p) {
			break
		}
		c.q[i], c.q[p] = c.q[p], c.q[i]
		i = p
	}
}

func (c *refClock) pop() *refItem {
	it := c.q[0]
	n := len(c.q) - 1
	c.q[0] = c.q[n]
	c.q = c.q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && c.less(r, l) {
			m = r
		}
		if !c.less(m, i) {
			break
		}
		c.q[i], c.q[m] = c.q[m], c.q[i]
		i = m
	}
	return it
}

func (c *refClock) at(at time.Duration, fn Event) *refItem {
	if at < c.now {
		at = c.now
	}
	it := &refItem{at: at, seq: c.seq, fn: fn}
	c.seq++
	c.push(it)
	return it
}

func (c *refClock) step() bool {
	for len(c.q) > 0 {
		it := c.pop()
		if it.dead {
			continue
		}
		c.now = it.at
		it.fn(c.now)
		return true
	}
	return false
}

func (c *refClock) peekAt() (time.Duration, bool) {
	for len(c.q) > 0 {
		if !c.q[0].dead {
			return c.q[0].at, true
		}
		c.pop()
	}
	return 0, false
}

func (c *refClock) runUntil(deadline time.Duration) {
	for {
		at, ok := c.peekAt()
		if !ok || at > deadline {
			break
		}
		c.step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

func (c *refClock) runBefore(deadline time.Duration) {
	for {
		at, ok := c.peekAt()
		if !ok || at >= deadline {
			return
		}
		c.step()
	}
}

// TestWheelMatchesHeapDifferential drives the wheel and the reference
// heap through identical randomized schedules — mixed deadlines across
// every wheel level and the overflow horizon, in-callback rescheduling,
// random cancels, interleaved RunBefore/RunUntil — and requires the
// identical execution trace (event id, firing time) from both.
func TestWheelMatchesHeapDifferential(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		w := NewClock()
		r := &refClock{}

		type fired struct {
			id int
			at time.Duration
		}
		var wTrace, rTrace []fired
		nextID := 0

		// spans exercise due-tick, every level, and overflow placement.
		randDelay := func() time.Duration {
			switch rng.Intn(6) {
			case 0:
				return time.Duration(rng.Int63n(1 << tickShift))
			case 1:
				return time.Duration(rng.Int63n(1 << (tickShift + slotBits)))
			case 2:
				return time.Duration(rng.Int63n(1 << (tickShift + 2*slotBits)))
			case 3:
				return time.Duration(rng.Int63n(1 << (tickShift + 3*slotBits)))
			case 4:
				return time.Duration(rng.Int63n(1 << (tickShift + 4*slotBits)))
			default:
				return time.Duration(rng.Int63n(1 << (tickShift + horizonBits + 2)))
			}
		}

		var wTimers []*Timer
		var rItems []*refItem
		schedule := func() {
			id := nextID
			nextID++
			d := randDelay()
			wTimers = append(wTimers, w.At(w.Now()+d, func(now time.Duration) {
				wTrace = append(wTrace, fired{id, now})
			}))
			rItems = append(rItems, r.at(r.now+d, func(now time.Duration) {
				rTrace = append(rTrace, fired{id, now})
			}))
		}

		// Interleave scheduling, cancellation, and partial runs.
		for round := 0; round < 40; round++ {
			for i := 0; i < 15; i++ {
				schedule()
			}
			// Cancel a random subset; both sides must agree on the verdict.
			for i := 0; i < 5; i++ {
				k := rng.Intn(len(wTimers))
				wOK := wTimers[k].Stop()
				rOK := !rItems[k].dead
				if rOK {
					// Only count as cancelled if not already fired/cancelled.
					found := false
					for _, q := range r.q {
						if q == rItems[k] && !q.dead {
							found = true
							break
						}
					}
					rOK = found
				}
				rItems[k].dead = true
				if wOK != rOK {
					t.Fatalf("trial %d: Stop verdict diverged: wheel=%v ref=%v", trial, wOK, rOK)
				}
			}
			d := time.Duration(rng.Int63n(1 << (tickShift + 3*slotBits)))
			if rng.Intn(2) == 0 {
				w.RunUntil(w.Now() + d)
				r.runUntil(r.now + d)
			} else {
				w.RunBefore(w.Now() + d)
				r.runBefore(r.now + d)
			}
			if w.Now() != r.now {
				t.Fatalf("trial %d round %d: clocks diverged: wheel=%v ref=%v", trial, round, w.Now(), r.now)
			}
		}
		w.Run()
		for r.step() {
		}

		if len(wTrace) != len(rTrace) {
			t.Fatalf("trial %d: trace lengths diverged: wheel=%d ref=%d", trial, len(wTrace), len(rTrace))
		}
		for i := range wTrace {
			if wTrace[i] != rTrace[i] {
				t.Fatalf("trial %d: traces diverge at %d: wheel=%+v ref=%+v", trial, i, wTrace[i], rTrace[i])
			}
		}
	}
}

// TestOverflowMigration schedules events beyond the wheel horizon and
// checks they fire in order once the cursor reaches them.
func TestOverflowMigration(t *testing.T) {
	c := NewClock()
	far := time.Duration(1) << (tickShift + horizonBits) // past the horizon
	var order []int
	c.At(3*far, func(time.Duration) { order = append(order, 3) })
	c.At(far, func(time.Duration) { order = append(order, 1) })
	c.At(2*far, func(time.Duration) { order = append(order, 2) })
	c.At(time.Millisecond, func(time.Duration) { order = append(order, 0) })
	c.Run()
	if len(order) != 4 {
		t.Fatalf("ran %d events", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("overflow order violated: %v", order)
		}
	}
	if c.Now() != 3*far {
		t.Errorf("Now = %v", c.Now())
	}
}

// TestScheduleBehindCursor pins the peek-ahead case: RunBefore against
// a far deadline advances the wheel cursor past near ticks without
// advancing the clock; a subsequent near-deadline schedule must still
// fire first and in order.
func TestScheduleBehindCursor(t *testing.T) {
	c := NewClock()
	var order []int
	c.At(time.Hour, func(time.Duration) { order = append(order, 2) })
	c.RunBefore(30 * time.Minute) // peeks, cursor moves toward the 1h event
	if c.Now() != 0 {
		t.Fatalf("Now = %v, want unchanged", c.Now())
	}
	c.At(time.Minute, func(time.Duration) { order = append(order, 1) })
	c.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func BenchmarkWheelKeepAlive(b *testing.B) {
	// The fleet's event mix: per request, schedule a completion, fire
	// it, cancel a keep-alive expiry (warm hit) and schedule the next.
	c := NewClock()
	const sandboxes = 256
	var timers [sandboxes]Handle
	nop := func(time.Duration, any) {}
	now := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb := i % sandboxes
		now += 50 * time.Microsecond
		done := c.Schedule(now+2*time.Millisecond, nop, nil)
		_ = done
		c.RunUntil(now + 2*time.Millisecond)
		c.Cancel(timers[sb])
		timers[sb] = c.Schedule(c.Now()+10*time.Minute, nop, nil)
	}
}

func BenchmarkHeapKeepAlive(b *testing.B) {
	// Same mix against the reference binary heap, for the DESIGN.md
	// comparison table.
	c := &refClock{}
	const sandboxes = 256
	var timers [sandboxes]*refItem
	nop := func(time.Duration) {}
	now := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb := i % sandboxes
		now += 50 * time.Microsecond
		c.at(now+2*time.Millisecond, nop)
		c.runUntil(now + 2*time.Millisecond)
		if timers[sb] != nil {
			timers[sb].dead = true
		}
		timers[sb] = c.at(c.now+10*time.Minute, nop)
	}
}
