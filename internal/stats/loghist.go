package stats

import (
	"fmt"
	"math"
)

// This file is the merge-exact histogram primitive behind the cluster
// simulator's latency and contention accounting. A LogHist holds a
// fixed number of logarithmically spaced buckets: bucket 0 collects
// everything at or below the origin, and above it each doubling of the
// value is split into BucketsPerDoubling buckets, so quantiles read
// back with ~2% relative resolution at 32 buckets per doubling.
// Counts are integers and the tracked moments (count, sum, sum of
// squares, min, max) are plain additions, so merging per-worker
// histograms is exact: the merged quantiles, mean, min, and max are
// functions of the observation multiset alone, independent of merge
// order and worker count — unlike percentiles over concatenated
// sample slices, which cost O(observations) memory to make exact.

// LogHistConfig fixes a LogHist's bucket layout. Two histograms can be
// merged only when their configs are identical: the config is the wire
// format of the bucket indices.
type LogHistConfig struct {
	// Origin is the upper edge of bucket 0: every observation at or
	// below it lands there, and it is the smallest value a quantile
	// reads back. Must be positive.
	Origin float64
	// BucketsPerDoubling is how many buckets split each doubling of
	// the observed value; 32 gives 2^(1/32)-1 ≈ 2.2% resolution.
	BucketsPerDoubling int
	// Buckets is the total bucket count, bucket 0 included. The top
	// bucket is unbounded: values beyond the penultimate edge (and
	// +Inf) clamp there.
	Buckets int
}

// Validate reports whether the layout is usable.
func (c LogHistConfig) Validate() error {
	if !(c.Origin > 0) || math.IsInf(c.Origin, 1) {
		return fmt.Errorf("stats: loghist origin %v not a positive finite value", c.Origin)
	}
	if c.BucketsPerDoubling <= 0 {
		return fmt.Errorf("stats: loghist buckets-per-doubling %d not positive", c.BucketsPerDoubling)
	}
	if c.Buckets < 2 {
		return fmt.Errorf("stats: loghist bucket count %d below 2", c.Buckets)
	}
	return nil
}

// Bucket maps an observation to its bucket index. Non-finite input is
// clamped rather than propagated into the index arithmetic: NaN and
// -Inf land in bucket 0 (a nominal observation), +Inf in the top
// bucket. The index rule decomposes x/Origin into a power-of-two
// doubling (Frexp) plus a sub-doubling position against the geometric
// edges Exp2(k/BucketsPerDoubling) — no log on the observe path.
// LogHist.Observe applies the identical rule through a cached edge
// table; this per-call form recomputes the edges and is for tests and
// tools.
func (c LogHistConfig) Bucket(x float64) int {
	if math.IsNaN(x) || x <= c.Origin {
		return 0
	}
	if math.IsInf(x, 1) {
		return c.Buckets - 1
	}
	m, e := math.Frexp(x / c.Origin)
	m2 := m + m // x/Origin = m2 * 2^(e-1), m2 in [1, 2)
	k := 0
	for k+1 < c.BucketsPerDoubling && math.Exp2(float64(k+1)/float64(c.BucketsPerDoubling)) <= m2 {
		k++
	}
	return c.clampIdx(1 + (e-1)*c.BucketsPerDoubling + k)
}

func (c LogHistConfig) clampIdx(idx int) int {
	if idx >= c.Buckets {
		idx = c.Buckets - 1
	}
	if idx < 1 {
		idx = 1 // x barely above Origin can quantize below the first edge
	}
	return idx
}

// edges returns the sub-doubling bucket edges Exp2(k/BucketsPerDoubling)
// for k = 0..BucketsPerDoubling-1 — the table Observe binary-searches
// instead of taking a logarithm per observation.
func (c LogHistConfig) edges() []float64 {
	thr := make([]float64, c.BucketsPerDoubling)
	for k := range thr {
		thr[k] = math.Exp2(float64(k) / float64(c.BucketsPerDoubling))
	}
	return thr
}

// Value returns the observation a bucket reads back as: the Origin for
// bucket 0, the bucket's upper edge otherwise.
func (c LogHistConfig) Value(idx int) float64 {
	if idx <= 0 {
		return c.Origin
	}
	return c.Origin * math.Exp2(float64(idx)/float64(c.BucketsPerDoubling))
}

// LogHist is a fixed-size logarithmic histogram with exactly tracked
// moments. Observations feed integer bucket counts plus count, sum,
// sum of squares, min, and max; Quantile and Summary read everything
// back without retaining samples. The zero LogHist is not usable —
// construct with NewLogHist.
type LogHist struct {
	cfg    LogHistConfig
	thr    []float64 // cached sub-doubling edges (cfg.edges())
	counts []int
	n      int
	sum    float64
	sumSq  float64
	min    float64
	max    float64
}

// NewLogHist returns an empty histogram with the given layout. The
// config must pass Validate; an invalid layout is a programming error
// and panics rather than silently mis-bucketing.
func NewLogHist(cfg LogHistConfig) *LogHist {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &LogHist{cfg: cfg, thr: cfg.edges(), counts: make([]int, cfg.Buckets)}
}

// Config returns the histogram's bucket layout.
func (h *LogHist) Config() LogHistConfig { return h.cfg }

// N returns the number of observations recorded.
func (h *LogHist) N() int { return h.n }

// Observe records one observation. Finite values contribute their
// exact value to the tracked moments (even when their bucket clamps at
// the top edge); non-finite values are clamped first — NaN and -Inf to
// the Origin, +Inf to the top bucket's edge — so the moments stay
// finite and merge-exact.
func (h *LogHist) Observe(x float64) {
	v := x
	switch {
	case math.IsNaN(v) || math.IsInf(v, -1):
		v = h.cfg.Origin
	case math.IsInf(v, 1):
		v = h.cfg.Value(h.cfg.Buckets - 1)
	}
	h.counts[h.bucket(x)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.sumSq += v * v
}

// bucket is cfg.Bucket over the cached edge table: identical indices
// (both walk the same Exp2 edges), but a Frexp plus a short binary
// search instead of recomputing the edges per call.
func (h *LogHist) bucket(x float64) int {
	if math.IsNaN(x) || x <= h.cfg.Origin {
		return 0
	}
	if math.IsInf(x, 1) {
		return h.cfg.Buckets - 1
	}
	m, e := math.Frexp(x / h.cfg.Origin)
	m2 := m + m
	lo, hi := 0, len(h.thr)
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.thr[mid] <= m2 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return h.cfg.clampIdx(1 + (e-1)*h.cfg.BucketsPerDoubling + lo)
}

// Merge folds another histogram into h. Both must share the same
// layout; merging is integer bucket addition plus moment addition, so
// the result is independent of merge grouping (associative) and a
// merge of per-worker histograms equals observing the union. A nil or
// empty source is a no-op.
func (h *LogHist) Merge(o *LogHist) error {
	if o == nil || o.n == 0 {
		return nil
	}
	if o.cfg != h.cfg {
		return fmt.Errorf("stats: loghist layout mismatch %+v vs %+v", h.cfg, o.cfg)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	h.sumSq += o.sumSq
	return nil
}

// Quantile returns the value at quantile q (0 < q ≤ 1): the upper edge
// of the bucket holding the rank-⌈q·n⌉ observation, clamped into the
// exactly tracked [min, max] so no quantile reads outside the observed
// range. An empty histogram returns the Origin.
func (h *LogHist) Quantile(q float64) float64 {
	if h.n == 0 {
		return h.cfg.Origin
	}
	rank := int(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	cum := 0
	v := h.cfg.Value(h.cfg.Buckets - 1)
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v = h.cfg.Value(i)
			break
		}
	}
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	return v
}

// Summary renders the histogram as the package's standard descriptive
// summary. N, Mean, Min, and Max are exact (tracked moments); StdDev
// is the population deviation from the tracked sum of squares; the
// percentiles are bucket-resolution Quantile reads.
func (h *LogHist) Summary() Summary {
	if h.n == 0 {
		return Summary{}
	}
	mean := h.sum / float64(h.n)
	variance := h.sumSq/float64(h.n) - mean*mean
	if variance < 0 {
		variance = 0 // float cancellation on near-constant samples
	}
	return Summary{
		N:      h.n,
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		Min:    h.min,
		P5:     h.Quantile(0.05),
		P25:    h.Quantile(0.25),
		Median: h.Quantile(0.50),
		P75:    h.Quantile(0.75),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
		Max:    h.max,
	}
}
