package stats

import (
	"math"
	"testing"
)

func testLogHistConfig() LogHistConfig {
	return LogHistConfig{Origin: 1, BucketsPerDoubling: 32, Buckets: 256}
}

// Regression for the unguarded float→index conversion this type
// replaced: int(math.Log2(NaN)*32) is a huge negative number, and the
// old observe path indexed the bucket array with it. Non-finite input
// must clamp, not panic.
func TestLogHistNonFiniteObservations(t *testing.T) {
	cfg := testLogHistConfig()
	if got := cfg.Bucket(math.NaN()); got != 0 {
		t.Errorf("Bucket(NaN) = %d, want 0", got)
	}
	if got := cfg.Bucket(math.Inf(1)); got != cfg.Buckets-1 {
		t.Errorf("Bucket(+Inf) = %d, want %d", got, cfg.Buckets-1)
	}
	if got := cfg.Bucket(math.Inf(-1)); got != 0 {
		t.Errorf("Bucket(-Inf) = %d, want 0", got)
	}

	h := NewLogHist(cfg)
	h.Observe(math.NaN())  // would have panicked with index out of range
	h.Observe(math.Inf(1)) // likewise through the huge positive index
	h.Observe(math.Inf(-1))
	h.Observe(2)
	if h.N() != 4 {
		t.Fatalf("N = %d, want 4", h.N())
	}
	s := h.Summary()
	for name, v := range map[string]float64{
		"mean": s.Mean, "min": s.Min, "max": s.Max, "p99": s.P99,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v after non-finite observations, want finite", name, v)
		}
	}
	if s.Min != cfg.Origin {
		t.Errorf("min = %v, want clamped origin %v", s.Min, cfg.Origin)
	}
	if want := cfg.Value(cfg.Buckets - 1); s.Max != want {
		t.Errorf("max = %v, want top edge %v", s.Max, want)
	}
}

func TestLogHistBucketValueRoundTrip(t *testing.T) {
	cfg := testLogHistConfig()
	if got := cfg.Bucket(0.5); got != 0 {
		t.Errorf("Bucket(0.5) = %d, want 0 (at or below origin)", got)
	}
	if got := cfg.Bucket(1); got != 0 {
		t.Errorf("Bucket(1) = %d, want 0 (origin is bucket 0's edge)", got)
	}
	if got := cfg.Bucket(1e12); got != cfg.Buckets-1 {
		t.Errorf("Bucket(1e12) = %d, want top bucket %d", got, cfg.Buckets-1)
	}
	if got := cfg.Value(0); got != cfg.Origin {
		t.Errorf("Value(0) = %v, want origin %v", got, cfg.Origin)
	}
	// A value read back from its own bucket must not move to a lower
	// bucket: Value(i) is the bucket's upper edge.
	for _, x := range []float64{1.0001, 1.5, 2, 3.7, 100, 250} {
		b := cfg.Bucket(x)
		if v := cfg.Value(b); v < x*(1-1e-12) {
			t.Errorf("Value(Bucket(%v)) = %v below the observation", x, v)
		}
		if b > 0 && cfg.Value(b-1) > x {
			t.Errorf("observation %v below its bucket's lower edge %v", x, cfg.Value(b-1))
		}
	}
}

// Merging per-worker histograms must equal observing the union, for
// every tracked quantity — the property that makes cluster-wide
// quantiles independent of worker count.
func TestLogHistMergeExact(t *testing.T) {
	cfg := testLogHistConfig()
	r := NewRand(99)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = math.Exp(r.Uniform(0, 5)) // spans ~1–148, multiple doublings
	}

	for _, workers := range []int{1, 4, 8} {
		parts := make([]*LogHist, workers)
		for i := range parts {
			parts[i] = NewLogHist(cfg)
		}
		for i, x := range xs {
			parts[i%workers].Observe(x)
		}
		merged := NewLogHist(cfg)
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		whole := NewLogHist(cfg)
		for _, x := range xs {
			whole.Observe(x)
		}
		if merged.N() != whole.N() {
			t.Fatalf("workers=%d: N %d != %d", workers, merged.N(), whole.N())
		}
		for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
			if a, b := merged.Quantile(q), whole.Quantile(q); a != b {
				t.Errorf("workers=%d: Quantile(%v) %v != %v", workers, q, a, b)
			}
		}
		ms, ws := merged.Summary(), whole.Summary()
		if ms.Min != ws.Min || ms.Max != ws.Max {
			t.Errorf("workers=%d: min/max drifted: %v/%v vs %v/%v",
				workers, ms.Min, ms.Max, ws.Min, ws.Max)
		}
		// Mean differs only by float summation order across shards; the
		// full report path merges in a fixed order, so there it is exact.
		if math.Abs(ms.Mean-ws.Mean) > 1e-9*ws.Mean {
			t.Errorf("workers=%d: mean drifted: %v vs %v", workers, ms.Mean, ws.Mean)
		}
	}
}

func TestLogHistQuantileWithinBucketResolution(t *testing.T) {
	cfg := testLogHistConfig()
	h := NewLogHist(cfg)
	r := NewRand(7)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = math.Exp(r.Uniform(0, 4))
		h.Observe(xs[i])
	}
	res := math.Exp2(1/float64(cfg.BucketsPerDoubling)) - 1 // ~2.2%
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := Percentile(xs, q*100)
		got := h.Quantile(q)
		if got < exact*(1-res) || got > exact*(1+res) {
			t.Errorf("Quantile(%v) = %v outside ±%.1f%% of exact %v", q, got, res*100, exact)
		}
	}
	// Quantiles never read outside the exactly tracked range.
	if h.Quantile(1) != Max(xs) {
		t.Errorf("Quantile(1) = %v, want exact max %v", h.Quantile(1), Max(xs))
	}
	if h.Quantile(0) < Min(xs) {
		t.Errorf("Quantile(0) = %v below exact min %v", h.Quantile(0), Min(xs))
	}
}

func TestLogHistEmptyAndMismatch(t *testing.T) {
	cfg := testLogHistConfig()
	h := NewLogHist(cfg)
	if got := h.Quantile(0.99); got != cfg.Origin {
		t.Errorf("empty Quantile = %v, want origin %v", got, cfg.Origin)
	}
	if s := h.Summary(); s != (Summary{}) {
		t.Errorf("empty Summary = %+v, want zero", s)
	}
	if err := h.Merge(nil); err != nil {
		t.Errorf("Merge(nil) = %v, want no-op", err)
	}

	other := NewLogHist(LogHistConfig{Origin: 1e-3, BucketsPerDoubling: 32, Buckets: 1280})
	other.Observe(5)
	if err := h.Merge(other); err == nil {
		t.Error("merging mismatched layouts succeeded")
	}

	for _, bad := range []LogHistConfig{
		{Origin: 0, BucketsPerDoubling: 32, Buckets: 256},
		{Origin: -1, BucketsPerDoubling: 32, Buckets: 256},
		{Origin: math.NaN(), BucketsPerDoubling: 32, Buckets: 256},
		{Origin: 1, BucketsPerDoubling: 0, Buckets: 256},
		{Origin: 1, BucketsPerDoubling: 32, Buckets: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}
