package stats

import "math"

// Rand is a small, deterministic pseudo-random number generator
// (splitmix64) used by the trace generator and the platform simulator.
// Unlike math/rand it is trivially seedable per experiment and guarantees
// identical streams across Go versions, which keeps the recorded
// EXPERIMENTS.md numbers stable.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Clone returns an independent copy of the generator at its current
// position. The clone and the original produce the same subsequent
// stream without affecting each other — the streaming trace generator
// snapshots the shared stream at each function's block boundary so
// per-function emitters can later replay their blocks lazily.
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// MixSeed derives an independent splitmix-style stream seed from
// (seed, salt). Simulators that shard work (fleet hosts, scenario
// function streams) key their private Rand streams with it so the
// streams are decorrelated but reproducible from the top-level seed.
func MixSeed(seed, salt uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(salt+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
// Sampling is ziggurat-based (see zig.go): one uniform draw and one
// multiply on the ~98.9% fast path.
func (r *Rand) Exp(mean float64) float64 {
	return mean * r.expZig()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation. Sampling is ziggurat-based (see zig.go): one
// uniform draw and one multiply on the ~99.3% fast path, versus the
// two log/sqrt/cos calls Box–Muller spent per variate.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.normZig()
}

// LogNormal returns a log-normally distributed value parameterized by the
// mu and sigma of the underlying normal distribution.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a (bounded) Pareto-distributed value with minimum xm and
// shape alpha. Heavy-tailed durations in the synthetic trace use this.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = 1 - math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Beta returns a Beta(a, b)-distributed value in [0, 1] using Jöhnk's
// gamma-free method for small parameters and the gamma ratio otherwise.
func (r *Rand) Beta(a, b float64) float64 {
	x := r.gamma(a)
	y := r.gamma(b)
	if x+y == 0 {
		return 0
	}
	return x / (x + y)
}

// gamma samples a Gamma(shape, 1) variate (Marsaglia–Tsang for shape >= 1,
// boosted for shape < 1).
func (r *Rand) gamma(shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	return r.GammaP(NewGammaParam(shape))
}

// GammaParam holds the Marsaglia–Tsang rejection constants for a fixed
// gamma shape ≥ 1. Callers that draw many variates of the same shape
// (the trace generator's per-function Beta utilizations) precompute one
// and call GammaP, skipping a square root and division per draw.
type GammaParam struct{ d, c float64 }

// NewGammaParam returns the sampling constants for Gamma(shape, 1).
// Shape must be ≥ 1; smaller shapes need the boost in gamma().
func NewGammaParam(shape float64) GammaParam {
	d := shape - 1.0/3.0
	return GammaParam{d: d, c: 1 / math.Sqrt(9*d)}
}

// GammaP samples a Gamma(shape, 1) variate for the precomputed
// constants. The draw sequence is identical to gamma(shape) for the
// same shape ≥ 1.
func (r *Rand) GammaP(g GammaParam) float64 {
	for {
		x := r.Normal(0, 1)
		v := 1 + g.c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return g.d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+g.d*(1-v+math.Log(v)) {
			return g.d * v
		}
	}
}

// BetaP samples a Beta variate as the gamma ratio of two precomputed
// shapes — the hot-path form of Beta for shapes ≥ 1.
func (r *Rand) BetaP(a, b GammaParam) float64 {
	x := r.GammaP(a)
	y := r.GammaP(b)
	if x+y == 0 {
		return 0
	}
	return x / (x + y)
}

// Poisson returns a Poisson-distributed count with the given mean (Knuth's
// method for small means, normal approximation for large).
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
