package stats

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should produce different streams")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntn(t *testing.T) {
	r := NewRand(2)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRandUniform(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(10)
		if v < 0 {
			t.Fatal("Exp returned negative")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.2 {
		t.Errorf("Exp mean = %v, want ~10", mean)
	}
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(5)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(3, 2)
	}
	if m := Mean(xs); math.Abs(m-3) > 0.05 {
		t.Errorf("Normal mean = %v, want ~3", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~2", s)
	}
}

func TestRandLogNormalPositive(t *testing.T) {
	r := NewRand(6)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal must be positive")
		}
	}
}

func TestRandParetoBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below minimum: %v", v)
		}
	}
}

func TestRandBetaRangeAndMean(t *testing.T) {
	r := NewRand(8)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Beta(2, 5)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of range: %v", v)
		}
		sum += v
	}
	// Mean of Beta(2,5) is 2/7 ≈ 0.2857.
	if mean := sum / n; math.Abs(mean-2.0/7) > 0.01 {
		t.Errorf("Beta mean = %v, want ~0.2857", mean)
	}
}

func TestRandPoisson(t *testing.T) {
	r := NewRand(9)
	const n = 100000
	var sum int
	for i := 0; i < n; i++ {
		sum += r.Poisson(4)
	}
	if mean := float64(sum) / n; math.Abs(mean-4) > 0.1 {
		t.Errorf("Poisson mean = %v, want ~4", mean)
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
	// Large-mean path (normal approximation).
	var big float64
	for i := 0; i < 10000; i++ {
		big += float64(r.Poisson(100))
	}
	if mean := big / 10000; math.Abs(mean-100) > 2 {
		t.Errorf("Poisson(100) mean = %v", mean)
	}
}
