// Package stats provides the statistical primitives used throughout the
// serverless cost analyses: empirical CDFs, percentiles, correlation
// coefficients, histograms, and small summary helpers.
//
// All functions operate on float64 slices and never mutate their inputs
// unless explicitly documented. The package is dependency-free and
// deterministic, which keeps every experiment in this repository
// reproducible bit-for-bit.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by summary functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrNaN is returned by summary functions handed a sample containing
// NaN: sort.Float64s leaves NaNs in unspecified positions, so order
// statistics over such a sample would silently be garbage.
var ErrNaN = errors.New("stats: NaN in sample")

// hasNaN reports whether xs contains a NaN.
func hasNaN(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It copies and sorts internally.
// A sample containing NaN returns NaN: sorting would place the NaNs
// arbitrarily, so any rank read from it would be silent garbage.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if hasNaN(xs) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile on an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics the experiment runners report.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P5     float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty if xs is
// empty and ErrNaN if xs contains a NaN (whose position after sorting
// is unspecified, so Min and every percentile would be garbage).
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	if hasNaN(xs) {
		return Summary{}, ErrNaN
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(sorted),
		Mean:   Mean(sorted),
		StdDev: StdDev(sorted),
		Min:    sorted[0],
		P5:     percentileSorted(sorted, 5),
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		P95:    percentileSorted(sorted, 95),
		P99:    percentileSorted(sorted, 99),
		Max:    sorted[len(sorted)-1],
	}, nil
}

// String renders the summary in a compact, human-readable form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Median, s.P95, s.P99, s.Max)
}

// CDF is an empirical cumulative distribution function: a sorted set of
// sample values with their cumulative probabilities.
type CDF struct {
	values []float64 // sorted ascending
}

// NewCDF builds an empirical CDF from xs. It copies xs.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{values: sorted}
}

// Len returns the number of samples backing the CDF.
func (c *CDF) Len() int { return len(c.values) }

// At returns P(X <= x), the fraction of samples no greater than x.
func (c *CDF) At(x float64) float64 {
	if len(c.values) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.values, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.values))
}

// Quantile returns the value at cumulative probability q in [0,1].
func (c *CDF) Quantile(q float64) float64 {
	return percentileSorted(c.values, q*100)
}

// Points returns n evenly-spaced (value, cumulative probability) points
// suitable for plotting or printing the CDF curve.
func (c *CDF) Points(n int) [][2]float64 {
	if n <= 0 || len(c.values) == 0 {
		return nil
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		if n == 1 {
			q = 1
		}
		pts = append(pts, [2]float64{c.Quantile(q), q})
	}
	return pts
}

// Pearson returns the Pearson linear correlation coefficient of paired
// samples xs and ys. It returns an error if the lengths differ, there are
// fewer than two samples, or either side has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient of paired
// samples xs and ys (Pearson correlation of the ranks, with average ranks
// for ties).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs, assigning tied values
// the average of the ranks they span.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank across the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// Fraction returns the fraction of all observations that fell in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of a and b.
// It returns 1 if exactly one sample is empty and 0 if both are.
func KSDistance(a, b []float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		// Evaluate both CDFs just after the smallest unprocessed value,
		// consuming ties on both sides together.
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// MeanRatio returns mean(num[i]/den[i]) over paired slices, skipping pairs
// with a zero denominator. It is the "inflation factor" helper used by the
// billing analyses (billed / actual).
func MeanRatio(num, den []float64) float64 {
	if len(num) != len(den) {
		return 0
	}
	var sum float64
	var n int
	for i := range num {
		if den[i] == 0 {
			continue
		}
		sum += num[i] / den[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RatioOfSums returns sum(num)/sum(den), the aggregate inflation factor.
func RatioOfSums(num, den []float64) float64 {
	d := Sum(den)
	if d == 0 {
		return 0
	}
	return Sum(num) / d
}
