package stats

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanSum(t *testing.T) {
	cases := []struct {
		xs       []float64
		mean, sm float64
	}{
		{nil, 0, 0},
		{[]float64{4}, 4, 4},
		{[]float64{1, 2, 3, 4}, 2.5, 10},
		{[]float64{-1, 1}, 0, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.mean, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.mean)
		}
		if got := Sum(c.xs); !almostEqual(got, c.sm, 1e-12) {
			t.Errorf("Sum(%v) = %v, want %v", c.xs, got, c.sm)
		}
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v, want -1/7", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
		{10, 1.4}, // interpolated
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile of empty should be 0")
	}
	// Percentile must not mutate its input.
	orig := []float64{5, 1, 3}
	Percentile(orig, 50)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
	s, err := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || !almostEqual(s.Mean, 5.5, 1e-12) || !almostEqual(s.Median, 5.5, 1e-12) {
		t.Errorf("Summary = %+v", s)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {99, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
	if q := c.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 3 {
		t.Errorf("Quantile(1) = %v", q)
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points = %d entries", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Errorf("Points not monotone at %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
	if NewCDF(nil).At(1) != 0 {
		t.Error("empty CDF At should be 0")
	}
}

func TestCDFPropertyMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		// CDF is monotone over sorted probe points and hits 1 at the max.
		probes := append([]float64(nil), xs...)
		sort.Float64s(probes)
		prev := 0.0
		for _, p := range probes {
			v := c.At(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return almostEqual(c.At(probes[len(probes)-1]), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v; want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, %v; want -1", r, err)
	}
	if _, err := Pearson(xs, xs[:2]); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err != ErrEmpty {
		t.Errorf("expected ErrEmpty, got %v", err)
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("expected zero-variance error")
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but non-linear relation: Spearman should be exactly 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25}
	r, err := Spearman(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Spearman = %v, %v; want 1", r, err)
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Counts[4])
	}
	if h.under != 1 || h.over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.under, h.over)
	}
	if !almostEqual(h.BinWidth(), 2, 1e-12) {
		t.Errorf("BinWidth = %v", h.BinWidth())
	}
	if !almostEqual(h.Fraction(0), 2.0/7, 1e-12) {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
	// Degenerate constructors must not panic.
	d := NewHistogram(5, 5, 0)
	d.Add(5)
	if d.Total() != 1 {
		t.Error("degenerate histogram broken")
	}
}

func TestMeanRatioAndRatioOfSums(t *testing.T) {
	num := []float64{2, 4, 6}
	den := []float64{1, 2, 3}
	if got := MeanRatio(num, den); !almostEqual(got, 2, 1e-12) {
		t.Errorf("MeanRatio = %v", got)
	}
	if got := RatioOfSums(num, den); !almostEqual(got, 2, 1e-12) {
		t.Errorf("RatioOfSums = %v", got)
	}
	if MeanRatio(num, den[:2]) != 0 {
		t.Error("length mismatch should return 0")
	}
	if MeanRatio([]float64{1}, []float64{0}) != 0 {
		t.Error("all-zero denominators should return 0")
	}
	if RatioOfSums([]float64{1}, []float64{0}) != 0 {
		t.Error("zero denominator sum should return 0")
	}
}

// NaN inputs must be detected, not sorted: sort.Float64s leaves NaNs
// in unspecified positions, so Min and every percentile over such a
// sample would silently be garbage.
func TestSummarizeAndPercentileRejectNaN(t *testing.T) {
	nan := math.NaN()
	if _, err := Summarize([]float64{1, nan, 3}); !errors.Is(err, ErrNaN) {
		t.Errorf("Summarize with NaN: err = %v, want ErrNaN", err)
	}
	if _, err := Summarize([]float64{nan}); !errors.Is(err, ErrNaN) {
		t.Errorf("Summarize of only NaN: err = %v, want ErrNaN", err)
	}
	if got := Percentile([]float64{1, nan, 3}, 50); !math.IsNaN(got) {
		t.Errorf("Percentile with NaN = %v, want NaN", got)
	}
	// Clean samples are unaffected.
	if _, err := Summarize([]float64{1, 2, 3}); err != nil {
		t.Errorf("clean Summarize: %v", err)
	}
	if got := Percentile([]float64{1, 2, 3}, 50); got != 2 {
		t.Errorf("clean Percentile = %v, want 2", got)
	}
	// Infinities are legitimate order-statistic inputs and still sort.
	if got := Percentile([]float64{1, 2, math.Inf(1)}, 100); !math.IsInf(got, 1) {
		t.Errorf("Percentile with +Inf = %v, want +Inf", got)
	}
}
