package stats

import "math"

// Ziggurat tables for the normal (128 layers) and exponential (256
// layers) samplers, after Marsaglia & Tsang (2000). The tables are
// computed once at package init from closed-form recurrences rather
// than embedded as literals; init order is deterministic, so every
// process builds bit-identical tables and the generated streams stay
// reproducible across runs and platforms.
//
// The fast path of each sampler is one Uint64 draw, one table compare,
// and one multiply — roughly 5× cheaper than the Box–Muller and
// log-inversion forms they replace, which matters because the trace
// generator draws per request and runs inside the simulation hot loop.

const (
	zigNormR = 3.442619855899    // rightmost layer edge, normal
	zigExpR  = 7.697117470131487 // rightmost layer edge, exponential
)

var (
	zigNormK [128]uint32
	zigNormW [128]float64
	zigNormF [128]float64

	zigExpK [256]uint32
	zigExpW [256]float64
	zigExpF [256]float64
)

func init() {
	// Normal: layer areas v = 9.91256303526217e-3, magnitudes scaled to
	// int32 range (2^31).
	const m1 = 2147483648.0
	const vn = 9.91256303526217e-3
	dn, tn := zigNormR, zigNormR
	q := vn / math.Exp(-0.5*dn*dn)
	zigNormK[0] = uint32(dn / q * m1)
	zigNormK[1] = 0
	zigNormW[0] = q / m1
	zigNormW[127] = dn / m1
	zigNormF[0] = 1
	zigNormF[127] = math.Exp(-0.5 * dn * dn)
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(vn/dn+math.Exp(-0.5*dn*dn)))
		zigNormK[i+1] = uint32(dn / tn * m1)
		tn = dn
		zigNormF[i] = math.Exp(-0.5 * dn * dn)
		zigNormW[i] = dn / m1
	}

	// Exponential: layer areas v = 3.949659822581572e-3, magnitudes
	// scaled to uint32 range (2^32).
	const m2 = 4294967296.0
	const ve = 3.949659822581572e-3
	de, te := zigExpR, zigExpR
	q = ve / math.Exp(-de)
	zigExpK[0] = uint32(de / q * m2)
	zigExpK[1] = 0
	zigExpW[0] = q / m2
	zigExpW[255] = de / m2
	zigExpF[0] = 1
	zigExpF[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(ve/de + math.Exp(-de))
		zigExpK[i+1] = uint32(de / te * m2)
		te = de
		zigExpF[i] = math.Exp(-de)
		zigExpW[i] = de / m2
	}
}

// normZig returns a standard normal variate.
func (r *Rand) normZig() float64 {
	for {
		u := r.Uint64()
		hz := int32(u >> 32)
		iz := uint32(hz) & 127
		a := uint32(hz)
		if hz < 0 {
			a = uint32(-int64(hz))
		}
		if a < zigNormK[iz] {
			return float64(hz) * zigNormW[iz]
		}
		// Slow path: tail or layer-edge rejection.
		for {
			x := float64(hz) * zigNormW[iz]
			if iz == 0 {
				// Tail beyond ±R via the standard exponential trick.
				for {
					x = -math.Log(r.openFloat64()) / zigNormR
					y := -math.Log(r.openFloat64())
					if y+y >= x*x {
						if hz > 0 {
							return zigNormR + x
						}
						return -(zigNormR + x)
					}
				}
			}
			if zigNormF[iz]+r.Float64()*(zigNormF[iz-1]-zigNormF[iz]) < math.Exp(-0.5*x*x) {
				return x
			}
			u = r.Uint64()
			hz = int32(u >> 32)
			iz = uint32(hz) & 127
			a = uint32(hz)
			if hz < 0 {
				a = uint32(-int64(hz))
			}
			if a < zigNormK[iz] {
				return float64(hz) * zigNormW[iz]
			}
		}
	}
}

// expZig returns a standard (mean-1) exponential variate.
func (r *Rand) expZig() float64 {
	jz := uint32(r.Uint64() >> 32)
	iz := jz & 255
	if jz < zigExpK[iz] {
		return float64(jz) * zigExpW[iz]
	}
	for {
		if iz == 0 {
			return zigExpR - math.Log(r.openFloat64())
		}
		x := float64(jz) * zigExpW[iz]
		if zigExpF[iz]+r.Float64()*(zigExpF[iz-1]-zigExpF[iz]) < math.Exp(-x) {
			return x
		}
		jz = uint32(r.Uint64() >> 32)
		iz = jz & 255
		if jz < zigExpK[iz] {
			return float64(jz) * zigExpW[iz]
		}
	}
}

// openFloat64 returns a uniform value in (0, 1], safe as a log argument.
func (r *Rand) openFloat64() float64 {
	return float64(r.Uint64()>>11+1) / (1 << 53)
}
