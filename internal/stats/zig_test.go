package stats

import (
	"math"
	"testing"
)

// TestZigguratNormalMoments checks the ziggurat normal sampler against
// the first four moments of N(0,1) at statistical tolerance.
func TestZigguratNormalMoments(t *testing.T) {
	r := NewRand(42)
	const n = 2_000_000
	var sum, sum2, sum3, sum4 float64
	for i := 0; i < n; i++ {
		x := r.Normal(0, 1)
		sum += x
		sum2 += x * x
		sum3 += x * x * x
		sum4 += x * x * x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	skew := sum3 / n
	kurt := sum4 / n
	if math.Abs(mean) > 0.003 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.005 {
		t.Errorf("variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.01 {
		t.Errorf("third moment = %v, want ~0", skew)
	}
	if math.Abs(kurt-3) > 0.03 {
		t.Errorf("fourth moment = %v, want ~3", kurt)
	}
}

// TestZigguratNormalTail checks the sampler produces tail values beyond
// the rightmost ziggurat layer (|x| > 3.442) at roughly the true rate
// (2·Φ(-3.4426) ≈ 5.75e-4).
func TestZigguratNormalTail(t *testing.T) {
	r := NewRand(7)
	const n = 4_000_000
	tail := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.Normal(0, 1)) > zigNormR {
			tail++
		}
	}
	rate := float64(tail) / n
	if rate < 3e-4 || rate > 9e-4 {
		t.Errorf("tail rate = %v, want ≈5.75e-4", rate)
	}
}

// TestZigguratExpMoments checks the exponential sampler's mean,
// variance, and tail mass.
func TestZigguratExpMoments(t *testing.T) {
	r := NewRand(99)
	const n = 2_000_000
	const mean = 200.0
	var sum, sum2 float64
	beyond := 0
	for i := 0; i < n; i++ {
		x := r.Exp(mean)
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
		sum2 += x * x
		if x > 3*mean {
			beyond++
		}
	}
	m := sum / n
	v := sum2/n - m*m
	if math.Abs(m-mean)/mean > 0.005 {
		t.Errorf("mean = %v, want ~%v", m, mean)
	}
	if math.Abs(v-mean*mean)/(mean*mean) > 0.02 {
		t.Errorf("variance = %v, want ~%v", v, mean*mean)
	}
	rate := float64(beyond) / n
	if math.Abs(rate-math.Exp(-3)) > 0.005 {
		t.Errorf("P(X>3·mean) = %v, want ≈%v", rate, math.Exp(-3))
	}
}

// TestZigguratDeterminism pins that identical seeds produce identical
// variate streams — the property every recorded experiment relies on.
func TestZigguratDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 10_000; i++ {
		if x, y := a.Normal(5, 2), b.Normal(5, 2); x != y {
			t.Fatalf("normal stream diverged at %d: %v != %v", i, x, y)
		}
		if x, y := a.Exp(300), b.Exp(300); x != y {
			t.Fatalf("exp stream diverged at %d: %v != %v", i, x, y)
		}
	}
}

func BenchmarkNormalZiggurat(b *testing.B) {
	r := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Normal(0, 1)
	}
	_ = sink
}

func BenchmarkExpZiggurat(b *testing.B) {
	r := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(200)
	}
	_ = sink
}
