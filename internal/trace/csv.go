package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the column layout of the on-disk trace format, one request
// per row. Durations are in microseconds, memory in MB.
var csvHeader = []string{
	"fn_id", "pod_id", "start_us", "duration_us", "cpu_time_us",
	"mem_used_mb", "alloc_cpu", "alloc_mem_mb", "cold_start", "init_us",
}

// WriteCSV writes the trace to w in the package's CSV format.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for i, r := range t.Requests {
		row[0] = strconv.Itoa(r.FnID)
		row[1] = strconv.Itoa(r.PodID)
		row[2] = strconv.FormatInt(r.Start.Microseconds(), 10)
		row[3] = strconv.FormatInt(r.Duration.Microseconds(), 10)
		row[4] = strconv.FormatInt(r.CPUTime.Microseconds(), 10)
		row[5] = strconv.FormatFloat(r.MemUsedMB, 'g', -1, 64)
		row[6] = strconv.FormatFloat(r.AllocCPU, 'g', -1, 64)
		row[7] = strconv.FormatFloat(r.AllocMemMB, 'g', -1, 64)
		row[8] = strconv.FormatBool(r.ColdStart)
		row[9] = strconv.FormatInt(r.InitDuration.Microseconds(), 10)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, name := range csvHeader {
		if header[i] != name {
			return nil, fmt.Errorf("trace: unexpected header column %d: %q (want %q)",
				i, header[i], name)
		}
	}
	t := &Trace{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		req, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Requests = append(t.Requests, req)
	}
	return t, nil
}

func parseRow(row []string) (Request, error) {
	var r Request
	ints := []struct {
		idx  int
		dst  *int
		name string
	}{
		{0, &r.FnID, "fn_id"},
		{1, &r.PodID, "pod_id"},
	}
	for _, f := range ints {
		v, err := strconv.Atoi(row[f.idx])
		if err != nil {
			return r, fmt.Errorf("%s: %w", f.name, err)
		}
		*f.dst = v
	}
	durs := []struct {
		idx  int
		dst  *time.Duration
		name string
	}{
		{2, &r.Start, "start_us"},
		{3, &r.Duration, "duration_us"},
		{4, &r.CPUTime, "cpu_time_us"},
		{9, &r.InitDuration, "init_us"},
	}
	for _, f := range durs {
		v, err := strconv.ParseInt(row[f.idx], 10, 64)
		if err != nil {
			return r, fmt.Errorf("%s: %w", f.name, err)
		}
		*f.dst = time.Duration(v) * time.Microsecond
	}
	floats := []struct {
		idx  int
		dst  *float64
		name string
	}{
		{5, &r.MemUsedMB, "mem_used_mb"},
		{6, &r.AllocCPU, "alloc_cpu"},
		{7, &r.AllocMemMB, "alloc_mem_mb"},
	}
	for _, f := range floats {
		v, err := strconv.ParseFloat(row[f.idx], 64)
		if err != nil {
			return r, fmt.Errorf("%s: %w", f.name, err)
		}
		*f.dst = v
	}
	cold, err := strconv.ParseBool(row[8])
	if err != nil {
		return r, fmt.Errorf("cold_start: %w", err)
	}
	r.ColdStart = cold
	return r, nil
}
