package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// Native Go fuzz targets for the two external input surfaces of the
// trace layer: the CSV wire format and the generator configuration.
// Both run as regression tests over their seed corpus under plain
// `go test`; `go test -fuzz=FuzzParseCSV ./internal/trace` explores
// further.

// seedCSV builds a small valid corpus entry via the writer itself.
func seedCSV(tb testing.TB) []byte {
	tb.Helper()
	tr := &Trace{Requests: []Request{
		{FnID: 1, PodID: 1, Start: 0, Duration: 50 * time.Millisecond,
			CPUTime: 20 * time.Millisecond, MemUsedMB: 100, AllocCPU: 0.5,
			AllocMemMB: 1024, ColdStart: true, InitDuration: 200 * time.Millisecond},
		{FnID: 1, PodID: 1, Start: time.Second, Duration: 30 * time.Millisecond,
			CPUTime: 10 * time.Millisecond, MemUsedMB: 80, AllocCPU: 0.5, AllocMemMB: 1024},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParseCSV asserts that arbitrary bytes never panic the parser and
// that every accepted, Validate-clean trace survives a write/read
// round-trip exactly.
func FuzzParseCSV(f *testing.F) {
	f.Add(seedCSV(f))
	f.Add([]byte(""))
	f.Add([]byte(strings.Join(csvHeader, ",") + "\n"))
	f.Add([]byte(strings.Join(csvHeader, ",") + "\n1,1,0,1000,500,10,0.5,512,true,100\n"))
	f.Add([]byte(strings.Join(csvHeader, ",") + "\n1,1,0,1000,500,NaN,0.5,512,true,100\n"))
	f.Add([]byte("fn_id,pod_id\n1,2\n"))
	f.Add([]byte("\xff\xfe garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			// Parseable but semantically invalid rows are allowed out of
			// ReadCSV; Validate is the gate the simulators use.
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("re-encode of valid trace failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse of re-encoded trace failed: %v", err)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatalf("round-trip changed the trace:\n%+v\nvs\n%+v", tr.Requests, back.Requests)
		}
	})
}

// FuzzGeneratorConfig asserts that any configuration — including NaN,
// infinities, and negative garbage — yields a generator output that is
// sorted, Validate-clean, and exactly the requested size, without
// panicking. Request counts are capped so the fuzzer spends its budget
// on shapes, not volume.
func FuzzGeneratorConfig(f *testing.F) {
	def := DefaultGeneratorConfig()
	f.Add(int(1000), int(40), uint64(1), def.MeanDurationMs, def.UtilCorrelation, def.ColdStartRate, 1.1, 0)
	f.Add(int(1), int(1), uint64(0), 0.0, -1.0, 2.0, 0.0, -10)
	f.Add(int(500), int(500), uint64(42), 1e9, 1.0, 0.999, 5.0, 10)
	f.Add(int(-5), int(-5), uint64(7), -3.0, 0.5, 0.04, -2.0, 3)
	f.Add(int(100), int(3), uint64(9), 58.19, 0.52, 0.04, 0.3, -1)

	f.Fuzz(func(t *testing.T, requests, functions int, seed uint64,
		meanDur, corr, coldRate, zipf float64, flavorBias int) {
		if requests > 3000 {
			requests = requests % 3000
		}
		if functions > 500 {
			functions = functions % 500
		}
		cfg := GeneratorConfig{
			Requests:        requests,
			Functions:       functions,
			Seed:            seed,
			MeanDurationMs:  meanDur,
			UtilCorrelation: corr,
			ColdStartRate:   coldRate,
			ZipfExponent:    zipf,
			FlavorBias:      flavorBias,
		}
		tr := Generate(cfg)
		if cfg.Requests <= 0 {
			if tr.Len() != 0 {
				t.Fatalf("non-positive request count produced %d requests", tr.Len())
			}
			return
		}
		if tr.Len() != cfg.Requests {
			t.Fatalf("generated %d requests, want %d", tr.Len(), cfg.Requests)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("generated trace invalid under %+v: %v", cfg, err)
		}
		for i := 1; i < tr.Len(); i++ {
			if tr.Requests[i].Start < tr.Requests[i-1].Start {
				t.Fatalf("trace not sorted at %d under %+v", i, cfg)
			}
		}
		if err := cfg.Validate(); err == nil {
			// A config that passes Validate must keep pods on a single
			// flavor (the fleet's placement-unit invariant).
			podFlavor := map[int][2]float64{}
			for _, r := range tr.Requests {
				fl := [2]float64{r.AllocCPU, r.AllocMemMB}
				if prev, ok := podFlavor[r.PodID]; ok && prev != fl {
					t.Fatalf("pod %d changes flavor", r.PodID)
				}
				podFlavor[r.PodID] = fl
			}
		}
	})
}
