package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"slscost/internal/stats"
)

// Flavor is a fixed vCPU–memory sandbox combination, mirroring the flavor
// catalog of Huawei FunctionGraph that the trace reports allocations in.
type Flavor struct {
	VCPU  float64
	MemMB float64
}

// DefaultFlavors is the flavor catalog used by the generator: fixed
// CPU–memory combos between 0.1 vCPU/256 MB and 4 vCPU/8192 MB, weighted
// toward small flavors as production traces report. The memory-rich
// ~1:2 GB ratio matches production FaaS flavors, and keeps the AWS
// proportional-CPU mapping only slightly above the recorded allocation
// (§2.3's "slightly higher than Huawei").
var DefaultFlavors = []Flavor{
	{0.1, 256},
	{0.25, 512},
	{0.5, 1024},
	{1, 2048},
	{2, 4096},
	{4, 8192},
}

// flavorWeights biases the flavor choice toward small allocations; the
// weights roughly follow the flavor popularity in production traces.
var flavorWeights = []float64{0.18, 0.22, 0.28, 0.2, 0.08, 0.04}

// GeneratorConfig parameterizes the synthetic trace generator.
type GeneratorConfig struct {
	// Requests is the total number of request records to produce.
	Requests int
	// Functions is the number of distinct functions; popularity is
	// Zipf-distributed across them.
	Functions int
	// Seed makes the trace reproducible.
	Seed uint64
	// MeanDurationMs is the target mean execution duration. The paper's
	// trace reports 58.19 ms. Durations are rescaled to hit this exactly.
	MeanDurationMs float64
	// UtilCorrelation is the latent-factor weight controlling the
	// CPU–memory utilization correlation (Pearson ≈ 0.55 at 0.52).
	UtilCorrelation float64
	// ColdStartRate is the approximate fraction of requests that are cold
	// starts, controlled through pod sizes.
	ColdStartRate float64
	// ZipfExponent skews function popularity: function rank i gets weight
	// 1/(i+1)^s. Zero means the trace-calibrated default of 1.1; larger
	// values concentrate traffic on fewer functions (a skewed tenant),
	// smaller values flatten it.
	ZipfExponent float64
	// FlavorBias shifts every function's drawn flavor index by this many
	// catalog steps (clamped to the catalog), biasing a tenant toward
	// smaller (negative) or larger (positive) sandboxes. Zero reproduces
	// the calibrated flavor mix bit-for-bit.
	FlavorBias int
}

// DefaultGeneratorConfig returns the calibration used by the experiments:
// marginals matching the published Huawei trace statistics.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Requests:        200000,
		Functions:       400,
		Seed:            20260613,
		MeanDurationMs:  58.19,
		UtilCorrelation: 0.52,
		ColdStartRate:   0.04,
	}
}

// Validate reports whether the configuration is well-formed. Generate
// itself is lenient — out-of-range fields fall back to the calibrated
// defaults — but callers that construct configurations from external
// input (CLI flags, fuzzers, scenario mixes) can reject garbage early.
func (cfg GeneratorConfig) Validate() error {
	if cfg.Requests < 0 {
		return fmt.Errorf("trace: negative request count %d", cfg.Requests)
	}
	if cfg.Functions < 0 {
		return fmt.Errorf("trace: negative function count %d", cfg.Functions)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MeanDurationMs", cfg.MeanDurationMs},
		{"UtilCorrelation", cfg.UtilCorrelation},
		{"ColdStartRate", cfg.ColdStartRate},
		{"ZipfExponent", cfg.ZipfExponent},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("trace: %s is %v", f.name, f.v)
		}
		if f.v < 0 {
			return fmt.Errorf("trace: negative %s %v", f.name, f.v)
		}
	}
	if cfg.UtilCorrelation > 1 {
		return fmt.Errorf("trace: UtilCorrelation %v above 1", cfg.UtilCorrelation)
	}
	if cfg.ColdStartRate >= 1 {
		return fmt.Errorf("trace: ColdStartRate %v not below 1", cfg.ColdStartRate)
	}
	return nil
}

// sanitize clamps every out-of-range (or non-finite) field to the
// calibrated default so Generate never propagates NaN/Inf into a trace.
func (cfg GeneratorConfig) sanitize() GeneratorConfig {
	if cfg.Functions <= 0 {
		cfg.Functions = 1
	}
	if cfg.MeanDurationMs <= 0 || math.IsNaN(cfg.MeanDurationMs) || math.IsInf(cfg.MeanDurationMs, 0) {
		cfg.MeanDurationMs = 58.19
	}
	if cfg.UtilCorrelation < 0 || cfg.UtilCorrelation > 1 || math.IsNaN(cfg.UtilCorrelation) {
		cfg.UtilCorrelation = 0.52
	}
	if cfg.ColdStartRate <= 0 || cfg.ColdStartRate >= 1 || math.IsNaN(cfg.ColdStartRate) {
		cfg.ColdStartRate = 0.04
	}
	if cfg.ZipfExponent <= 0 || math.IsNaN(cfg.ZipfExponent) || math.IsInf(cfg.ZipfExponent, 0) {
		cfg.ZipfExponent = 1.1
	}
	return cfg
}

// fnProfile is the per-function latent profile the generator draws
// requests from.
type fnProfile struct {
	flavor      Flavor
	meanDurMs   float64 // median of the per-request lognormal
	sigma       float64 // per-request lognormal spread
	cpuUtilA    float64 // Beta alpha for CPU utilization
	cpuUtilB    float64
	memUtilA    float64
	memUtilB    float64
	initMs      float64 // cold-start initialization mean
	podSizeMean float64 // mean requests per pod (geometric)
	weight      float64 // popularity

	// Derived constants, computed once per profile so the per-request
	// hot loop does no logs or square roots of fixed parameters.
	logMeanDur float64          // log(meanDurMs), the lognormal mu
	cpuGA      stats.GammaParam // Marsaglia–Tsang constants for the
	cpuGB      stats.GammaParam // four per-function Beta shapes
	memGA      stats.GammaParam
	memGB      stats.GammaParam
}

// sharedUtilG are the gamma constants of the shared latent Beta(1.6, 3.2)
// factor every function's utilization pair mixes in.
var sharedUtilG = [2]stats.GammaParam{stats.NewGammaParam(1.6), stats.NewGammaParam(3.2)}

// buildProfiles draws every function's latent profile from the shared
// profile stream (seeded with cfg.Seed directly). The draw order is part
// of the generator's determinism contract: every generation path starts
// from this exact sequence. Per-request randomness does NOT continue on
// this stream — each function draws from two private streams derived
// from (Seed, function), so emission, calibration, and pod scans can
// each walk exactly the draws they need.
func buildProfiles(rng *stats.Rand, cfg GeneratorConfig) ([]fnProfile, float64) {
	profiles := make([]fnProfile, cfg.Functions)
	var totalWeight float64
	for i := range profiles {
		p := &profiles[i]
		// Heavy-tailed per-function scale: most functions are short, a few
		// are orders of magnitude longer (the trace's long tail).
		p.meanDurMs = rng.Pareto(4, 1.6)
		if p.meanDurMs > 60000 {
			p.meanDurMs = 60000
		}
		// Longer functions tend to run on larger flavors, as production
		// traces show; this keeps billable-time rounding a second-order
		// effect on aggregate billable resources (§2.5).
		fi := pickFlavorIndex(rng)
		if p.meanDurMs > 200 && fi < len(DefaultFlavors)-1 {
			fi++
		}
		if p.meanDurMs > 2000 && fi < len(DefaultFlavors)-1 {
			fi++
		}
		if p.meanDurMs < 10 && fi > 0 {
			fi--
		}
		if fi += cfg.FlavorBias; fi < 0 {
			fi = 0
		} else if fi > len(DefaultFlavors)-1 {
			fi = len(DefaultFlavors) - 1
		}
		p.flavor = DefaultFlavors[fi]
		p.sigma = rng.Uniform(0.3, 0.9)
		// Low utilizations: Beta shapes with mean ≈ 0.25–0.45 and a wide
		// spread, so that well over half of requests sit below 50%.
		p.cpuUtilA = rng.Uniform(1.0, 2.2)
		p.cpuUtilB = rng.Uniform(1.8, 3.8)
		p.memUtilA = rng.Uniform(1.0, 2.0)
		p.memUtilB = rng.Uniform(2.0, 4.2)
		p.initMs = rng.Uniform(50, 600)
		// Pod sizes: mean requests per pod follows 1/coldStartRate on
		// average but varies per function, giving Figure 4 its mix of
		// well-amortized and poorly-amortized sandboxes.
		p.podSizeMean = 1 + rng.Pareto(1.0, 1.3)/cfg.ColdStartRate*1.2
		// Zipf-ish popularity.
		p.weight = 1 / math.Pow(float64(i+1), cfg.ZipfExponent)
		totalWeight += p.weight

		// Pure arithmetic (no draws), so the profile stream stays aligned.
		p.logMeanDur = math.Log(p.meanDurMs)
		p.cpuGA = stats.NewGammaParam(p.cpuUtilA)
		p.cpuGB = stats.NewGammaParam(p.cpuUtilB)
		p.memGA = stats.NewGammaParam(p.memUtilA)
		p.memGB = stats.NewGammaParam(p.memUtilB)
	}
	return profiles, totalWeight
}

// requestCounts assigns request counts per function proportionally to
// weight, distributing the rounding remainder round-robin.
func requestCounts(cfg GeneratorConfig, profiles []fnProfile, totalWeight float64) []int {
	counts := make([]int, cfg.Functions)
	assigned := 0
	for i := range profiles {
		n := int(float64(cfg.Requests) * profiles[i].weight / totalWeight)
		counts[i] = n
		assigned += n
	}
	for i := 0; assigned < cfg.Requests; i = (i + 1) % cfg.Functions {
		counts[i]++
		assigned++
	}
	return counts
}

// timingSeed and utilSeed derive a function's two private streams from
// the trace seed. Timing (pod boundaries, arrivals, durations, inits)
// and utilization (the three Betas per request) are decorrelated
// streams, so a walker that only needs the trace's shape — the
// calibration sweep, the pod-metadata scan — replays the timing stream
// alone and never pays for the gamma draws.
func timingSeed(seed uint64, fn int) uint64 {
	return stats.MixSeed(stats.MixSeed(seed, 1), uint64(fn))
}

func utilSeed(seed uint64, fn int) uint64 {
	return stats.MixSeed(stats.MixSeed(seed, 2), uint64(fn))
}

// fnEmitter generates one function's request block pod by pod. Both the
// materialized path (Generate) and the streaming path (GenerateStream,
// GenerateByFunction) drive their draws through this one type, so the
// pseudo-random draw order — and therefore the emitted trace — is
// identical by construction.
type fnEmitter struct {
	timing    *stats.Rand // pod/arrival/duration stream
	util      *stats.Rand // per-request utilization stream
	p         fnProfile
	fn        int
	corr      float64 // cfg.UtilCorrelation
	remaining int
	arrival   float64 // ms offset of the next request
	podID     int     // id of the most recently generated pod (global numbering)

	podLeft  int     // requests still to emit from the current pod
	podFirst bool    // next emission is the pod's cold-start request
	initMs   float64 // current pod's initialization draw
}

// newFnEmitter positions an emitter at the start of function fn's
// generation block, deriving the function's private streams from the
// trace seed. It consumes the block-leading arrival-offset draw.
func newFnEmitter(seed uint64, fn int, p fnProfile, count int, corr float64, podBase int) *fnEmitter {
	timing := stats.NewRand(timingSeed(seed, fn))
	return &fnEmitter{
		timing:    timing,
		util:      stats.NewRand(utilSeed(seed, fn)),
		p:         p,
		fn:        fn,
		corr:      corr,
		remaining: count,
		arrival:   timing.Uniform(0, 60_000), // ms offset for function's first pod
		podID:     podBase,
	}
}

// next writes the function's next raw (unrescaled) request into *r and
// reports whether one was emitted; the function's request budget
// exhausts to false. Within a pod, requests are emitted in strictly
// increasing arrival order, and consecutive pods never move backwards
// in time, so a function's whole emission is time-ordered. Emitting
// straight into the caller's Request keeps the hot path free of
// per-pod buffers (and their reallocation churn).
//
// The timing draws here (pod size, init, durations, think times, gap)
// must stay in lockstep with timingEmitter.nextPod, which walks the
// same stream without materializing requests.
func (e *fnEmitter) next(r *Request) bool {
	if e.podLeft == 0 {
		if e.remaining <= 0 {
			return false
		}
		e.podID++
		size := podSize(e.timing, e.p.podSizeMean)
		if size > e.remaining {
			size = e.remaining
		}
		e.initMs = math.Max(20, e.timing.Normal(e.p.initMs, e.p.initMs*0.25))
		e.podLeft = size
		e.podFirst = true
		e.remaining -= size
	}
	durMs := e.timing.LogNormal(e.p.logMeanDur, e.p.sigma)
	if durMs < 0.05 {
		durMs = 0.05
	}
	cpuU, memU := correlatedUtils(e.util, &e.p, e.corr)
	*r = Request{
		FnID:       e.fn,
		PodID:      e.podID,
		Start:      time.Duration(e.arrival * float64(time.Millisecond)),
		Duration:   time.Duration(durMs * float64(time.Millisecond)),
		AllocCPU:   e.p.flavor.VCPU,
		AllocMemMB: e.p.flavor.MemMB,
		MemUsedMB:  memU * e.p.flavor.MemMB,
	}
	r.CPUTime = time.Duration(cpuU * e.p.flavor.VCPU * durMs * float64(time.Millisecond))
	if e.podFirst {
		r.ColdStart = true
		r.InitDuration = time.Duration(e.initMs * float64(time.Millisecond))
		e.podFirst = false
	}
	// Next arrival within the pod: short think time keeps the pod warm;
	// occasionally long gaps end pods in reality but pod membership is
	// already decided here.
	e.arrival += durMs + e.timing.Exp(200)
	e.podLeft--
	if e.podLeft == 0 {
		e.arrival += e.timing.Exp(2000) // idle gap between pods
	}
	return true
}

// timingEmitter walks a function's timing stream without drawing
// utilizations or materializing requests: the shape of the emission —
// pod boundaries, arrivals, truncated durations — at a fraction of full
// generation's cost. The calibration sweep (scale == 0) and the
// pod-metadata scan (scale > 0) both use it; its draw sequence must
// stay in lockstep with fnEmitter.nextPod's timing draws.
type timingEmitter struct {
	rng       *stats.Rand
	p         fnProfile
	remaining int
	arrival   float64
}

func newTimingEmitter(seed uint64, fn int, p fnProfile, count int) *timingEmitter {
	rng := stats.NewRand(timingSeed(seed, fn))
	return &timingEmitter{
		rng:       rng,
		p:         p,
		remaining: count,
		arrival:   rng.Uniform(0, 60_000),
	}
}

// podShape is one pod's placement-relevant extent from a timing walk.
type podShape struct {
	first    time.Duration
	init     time.Duration
	last     time.Duration // latest request turnaround end, scaled
	nreqs    int
	durSumMs float64 // sum of truncated raw durations, for calibration
}

// nextPod walks one pod. With scale > 0 the reported last applies the
// duration rescale exactly as FunctionStream.Next does (scaling the
// nanosecond-truncated duration, flooring at 1µs); durSumMs always
// accumulates the raw truncated durations rescaleDurations averages.
func (e *timingEmitter) nextPod(scale float64) (podShape, bool) {
	if e.remaining <= 0 {
		return podShape{}, false
	}
	size := podSize(e.rng, e.p.podSizeMean)
	if size > e.remaining {
		size = e.remaining
	}
	initMs := math.Max(20, e.rng.Normal(e.p.initMs, e.p.initMs*0.25))
	sh := podShape{
		first: time.Duration(e.arrival * float64(time.Millisecond)),
		init:  time.Duration(initMs * float64(time.Millisecond)),
		nreqs: size,
	}
	for j := 0; j < size; j++ {
		durMs := e.rng.LogNormal(e.p.logMeanDur, e.p.sigma)
		if durMs < 0.05 {
			durMs = 0.05
		}
		raw := time.Duration(durMs * float64(time.Millisecond))
		sh.durSumMs += float64(raw) / float64(time.Millisecond)
		dur := raw
		if scale > 0 {
			dur = time.Duration(float64(raw) * scale)
			if dur <= 0 {
				dur = time.Microsecond
			}
		}
		end := time.Duration(e.arrival*float64(time.Millisecond)) + dur
		if j == 0 {
			end += sh.init
		}
		if end > sh.last {
			sh.last = end
		}
		e.arrival += durMs + e.rng.Exp(200)
	}
	e.remaining -= size
	e.arrival += e.rng.Exp(2000)
	return sh, true
}

// Generate produces a synthetic trace under cfg. The result is sorted by
// arrival time and always passes (*Trace).Validate. GenerateStream
// yields the identical request sequence without materializing it.
func Generate(cfg GeneratorConfig) *Trace {
	if cfg.Requests <= 0 {
		return &Trace{}
	}
	cfg = cfg.sanitize()
	rng := stats.NewRand(cfg.Seed)
	profiles, totalWeight := buildProfiles(rng, cfg)
	counts := requestCounts(cfg, profiles, totalWeight)

	reqs := make([]Request, 0, cfg.Requests)
	podBase := 0
	for fn, p := range profiles {
		e := newFnEmitter(cfg.Seed, fn, p, counts[fn], cfg.UtilCorrelation, podBase)
		var r Request
		for e.next(&r) {
			reqs = append(reqs, r)
		}
		podBase = e.podID
	}

	rescaleDurations(reqs, cfg.MeanDurationMs)
	// Stable sort over the function-major generation order: requests at
	// the same instant (possible once float arrivals quantize to
	// nanoseconds at large trace sizes) order by function index — the
	// exact tie rule GenerateStream's merge applies, keeping the two
	// paths bit-identical even on ties.
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Start < reqs[j].Start })
	return &Trace{Requests: reqs}
}

// pickFlavorIndex draws a flavor index according to flavorWeights.
func pickFlavorIndex(rng *stats.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i, w := range flavorWeights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(DefaultFlavors) - 1
}

// podSize draws the number of requests a sandbox serves before it is
// reclaimed. Production pod sizes are heavy-tailed: a large minority of
// sandboxes serve only a handful of requests (so their cold start never
// amortizes — Figure 4's 42.1%), while a few serve thousands. A lognormal
// with a wide sigma reproduces that mix while keeping the requested mean.
func podSize(rng *stats.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	const sigma = 2.2
	// E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = mean - 1.
	mu := math.Log(mean-1) - sigma*sigma/2
	n := 1 + int(rng.LogNormal(mu, sigma))
	if n > 1_000_000 {
		n = 1_000_000
	}
	return n
}

// correlatedUtils draws a (cpu, mem) utilization pair with a shared latent
// Beta factor so the pair exhibits the trace's moderate positive
// correlation without a strong linear relationship. All shapes are ≥ 1,
// so every Beta goes through the precomputed gamma constants.
func correlatedUtils(rng *stats.Rand, p *fnProfile, w float64) (cpuU, memU float64) {
	shared := rng.BetaP(sharedUtilG[0], sharedUtilG[1])
	cpu := rng.BetaP(p.cpuGA, p.cpuGB)
	mem := rng.BetaP(p.memGA, p.memGB)
	cpuU = clamp01(w*shared + (1-w)*cpu)
	memU = clamp01(w*shared + (1-w)*mem)
	return cpuU, memU
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// rescaleDurations scales every duration (and CPU time, to preserve
// utilization rates) so the trace mean matches target exactly.
func rescaleDurations(reqs []Request, targetMs float64) {
	if len(reqs) == 0 {
		return
	}
	var sum float64
	for _, r := range reqs {
		sum += float64(r.Duration) / float64(time.Millisecond)
	}
	mean := sum / float64(len(reqs))
	if mean <= 0 {
		return
	}
	k := targetMs / mean
	for i := range reqs {
		reqs[i].Duration = time.Duration(float64(reqs[i].Duration) * k)
		reqs[i].CPUTime = time.Duration(float64(reqs[i].CPUTime) * k)
		if reqs[i].Duration <= 0 {
			reqs[i].Duration = time.Microsecond
		}
	}
}
