package trace

import (
	"sort"
	"time"

	"slscost/internal/stats"
)

// This file is the streaming face of the trace layer: an iterator
// abstraction over time-ordered request sequences, adapters between
// streams and materialized traces, and a streaming generator that emits
// the exact request sequence Generate materializes — in arrival order,
// with memory bounded by the function count rather than the request
// count. internal/scenario re-times these streams per function and
// internal/fleet consumes them for cluster simulations far larger than
// memory would allow a materialized trace.

// Stream is a pull iterator over requests in non-decreasing arrival
// (Start) order. Next returns the next request and true, or a zero
// Request and false once the stream is exhausted. Streams are
// single-use and not safe for concurrent use; re-open one through its
// Source.
type Stream interface {
	Next() (Request, bool)
}

// IntoStream is an optional Stream fast path. NextInto writes the next
// request into *r instead of returning it by value, so a chain of
// stream wrappers moves one pointer instead of re-copying the ~100-byte
// Request struct at every hop. Semantics are otherwise identical to
// Next; *r is unspecified when NextInto returns false.
type IntoStream interface {
	Stream
	NextInto(r *Request) bool
}

// NextIntoFunc returns the stream's NextInto method when it has one, or
// an adapter over Next. Hot consumers resolve the fast path once and
// call through the returned func per request.
func NextIntoFunc(s Stream) func(*Request) bool {
	if is, ok := s.(IntoStream); ok {
		return is.NextInto
	}
	return func(r *Request) bool {
		rr, ok := s.Next()
		if !ok {
			return false
		}
		*r = rr
		return true
	}
}

// Source produces a fresh Stream positioned at the beginning. The
// streaming cluster simulator opens its input twice — once for the
// placement scan, once for the replay — so anything fed to it must be
// re-openable; for deterministic generators reopening just means
// re-deriving the same seeded stream.
type Source func() (Stream, error)

// sliceStream iterates over a materialized request slice.
type sliceStream struct {
	reqs []Request
	pos  int
}

func (s *sliceStream) Next() (Request, bool) {
	if s.pos >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.pos]
	s.pos++
	return r, true
}

func (s *sliceStream) NextInto(r *Request) bool {
	if s.pos >= len(s.reqs) {
		return false
	}
	*r = s.reqs[s.pos]
	s.pos++
	return true
}

// FromTrace adapts a materialized trace to the Stream interface. The
// stream shares tr's backing array; it is a view, not a copy.
func FromTrace(tr *Trace) Stream {
	if tr == nil {
		return &sliceStream{}
	}
	return &sliceStream{reqs: tr.Requests}
}

// SourceOf returns a Source that re-opens tr from the start on every
// call — the adapter that lets a recorded (CSV-loaded) trace flow
// through the streaming simulation path.
func SourceOf(tr *Trace) Source {
	return func() (Stream, error) { return FromTrace(tr), nil }
}

// Collect drains a stream into a materialized trace. It is the inverse
// of FromTrace: Collect(FromTrace(tr)) reproduces tr exactly, and
// Collect(GenerateStream(cfg)) equals Generate(cfg).
func Collect(s Stream) *Trace {
	tr := &Trace{}
	for r, ok := s.Next(); ok; r, ok = s.Next() {
		tr.Requests = append(tr.Requests, r)
	}
	return tr
}

// FunctionStream yields one function's requests in generation order,
// which for the generator is also strictly increasing arrival order.
// Durations arrive already rescaled to the configured trace mean, so a
// FunctionStream's requests are bit-identical to the matching subset of
// Generate's output.
type FunctionStream struct {
	fn    int
	count int
	scale float64 // duration rescale factor; 0 disables rescaling
	em    *fnEmitter
}

// FnID returns the function the stream belongs to.
func (f *FunctionStream) FnID() int { return f.fn }

// Len returns the total number of requests the stream will yield.
func (f *FunctionStream) Len() int { return f.count }

// Next returns the function's next request in arrival order.
func (f *FunctionStream) Next() (Request, bool) {
	var r Request
	ok := f.NextInto(&r)
	return r, ok
}

// NextInto writes the function's next request into *r — the IntoStream
// fast path, sparing the value-return copy at every consumer hop.
func (f *FunctionStream) NextInto(r *Request) bool {
	if !f.em.next(r) {
		return false
	}
	if f.scale > 0 {
		// Mirror rescaleDurations exactly: scale wall clock and CPU time
		// by the same factor (preserving utilization rates) and floor the
		// result at one microsecond.
		r.Duration = time.Duration(float64(r.Duration) * f.scale)
		r.CPUTime = time.Duration(float64(r.CPUTime) * f.scale)
		if r.Duration <= 0 {
			r.Duration = time.Microsecond
		}
	}
	return true
}

// Calibration is the generator's reusable calibration state: the
// per-function latent profiles, request counts, pod-ID bases, and the
// duration-rescale factor. The rescale factor depends on every raw
// duration, so lazy emission needs a calibration sweep first — but the
// sweep only walks each function's timing stream (arrivals, pod
// boundaries, durations), never the ~3× costlier utilization draws. A
// Calibration is a pure function of its GeneratorConfig and can
// instantiate any number of independent stream openings without
// re-running the sweep; memory is O(Functions), not O(Requests).
type Calibration struct {
	cfg      GeneratorConfig // sanitized
	profiles []fnProfile
	counts   []int
	podBases []int
	scale    float64
	pods     int
}

// Calibrate runs the calibration sweep for cfg. The result is empty
// (zero functions, zero pods) when cfg requests no trace.
func Calibrate(cfg GeneratorConfig) *Calibration {
	if cfg.Requests <= 0 {
		return &Calibration{}
	}
	cfg = cfg.sanitize()
	rng := stats.NewRand(cfg.Seed)
	profiles, totalWeight := buildProfiles(rng, cfg)
	counts := requestCounts(cfg, profiles, totalWeight)

	c := &Calibration{
		cfg:      cfg,
		profiles: profiles,
		counts:   counts,
		podBases: make([]int, cfg.Functions),
	}
	var durSumMs float64
	pods := 0
	for fn, p := range profiles {
		c.podBases[fn] = pods
		e := newTimingEmitter(cfg.Seed, fn, p, counts[fn])
		for sh, ok := e.nextPod(0); ok; sh, ok = e.nextPod(0) {
			durSumMs += sh.durSumMs
			pods++
		}
	}
	if mean := durSumMs / float64(cfg.Requests); mean > 0 {
		c.scale = cfg.MeanDurationMs / mean
	}
	c.pods = pods
	return c
}

// Pods returns the total pod count of the calibrated trace.
func (c *Calibration) Pods() int { return c.pods }

// Streams instantiates one fresh time-ordered stream per function,
// each positioned at its function's beginning (emitters re-derive the
// per-function streams from the seed, so repeated calls yield
// independent, identical openings).
func (c *Calibration) Streams() []*FunctionStream {
	out := make([]*FunctionStream, len(c.profiles))
	for fn, p := range c.profiles {
		out[fn] = &FunctionStream{
			fn:    fn,
			count: c.counts[fn],
			scale: c.scale,
			em:    newFnEmitter(c.cfg.Seed, fn, p, c.counts[fn], c.cfg.UtilCorrelation, c.podBases[fn]),
		}
	}
	return out
}

// Stream instantiates a fresh merged stream over the whole calibrated
// trace. The result implements PodScanner: the streaming cluster
// simulator's placement pass reads pod metadata from a timing-only
// walk instead of generating (and discarding) every request.
func (c *Calibration) Stream() Stream {
	fns := c.Streams()
	srcs := make([]Stream, len(fns))
	for i, f := range fns {
		srcs[i] = f
	}
	m := Merge(srcs...)
	return &calStream{Stream: m, into: NextIntoFunc(m), c: c}
}

// PodMeta describes one sandbox of a generated trace: identity, flavor,
// cold-start initialization, arrival extent, and request count — the
// placement-relevant shape of the pod, with durations already rescaled.
// It carries exactly what a full scan of the emitted requests would
// reconstruct per pod.
type PodMeta struct {
	ID    int
	FnID  int
	VCPU  float64
	MemMB float64
	Init  time.Duration
	First time.Duration
	Last  time.Duration
	NReqs int
}

// PodScanner is implemented by streams that can enumerate their pod
// population up front without being consumed. The streaming cluster
// simulator's placement pass uses it to skip materializing every
// request of its first pass.
type PodScanner interface {
	PodScan() []PodMeta
}

// calStream is the calibrated merged stream; it adds the PodScan fast
// path to the plain merge and forwards the merge's NextInto.
type calStream struct {
	Stream
	into func(*Request) bool
	c    *Calibration
}

func (s *calStream) NextInto(r *Request) bool { return s.into(r) }

func (s *calStream) PodScan() []PodMeta { return s.c.PodMetas() }

// PodMetas walks every function's timing stream and returns the pods of
// the calibrated trace in order of first arrival — the order a full
// scan of the merged stream would first encounter them. The walk draws
// no utilizations, so it costs a fraction of an emission pass. The
// slice is freshly built per call; callers own it.
func (c *Calibration) PodMetas() []PodMeta {
	metas := make([]PodMeta, 0, c.pods)
	for fn, p := range c.profiles {
		e := newTimingEmitter(c.cfg.Seed, fn, p, c.counts[fn])
		id := c.podBases[fn]
		for sh, ok := e.nextPod(c.scale); ok; sh, ok = e.nextPod(c.scale) {
			id++
			metas = append(metas, PodMeta{
				ID:    id,
				FnID:  fn,
				VCPU:  p.flavor.VCPU,
				MemMB: p.flavor.MemMB,
				Init:  sh.init,
				First: sh.first,
				Last:  sh.last,
				NReqs: sh.nreqs,
			})
		}
	}
	// First-appearance order in the merged stream: ascending first
	// arrival, ties to the lower pod ID — IDs are function-major and the
	// merge breaks ties toward the lower function index, while within a
	// function pod arrivals strictly increase.
	sort.Slice(metas, func(i, j int) bool {
		if metas[i].First != metas[j].First {
			return metas[i].First < metas[j].First
		}
		return metas[i].ID < metas[j].ID
	})
	return metas
}

// GenerateByFunction returns one time-ordered stream per function of
// the trace Generate(cfg) would materialize, plus the total pod count.
// The union of the streams is exactly Generate's request multiset; the
// scenario engine re-times each function's stream independently and
// GenerateStream merges them back into one globally ordered stream.
// Callers opening the same configuration repeatedly should Calibrate
// once and call Streams per opening.
func GenerateByFunction(cfg GeneratorConfig) ([]*FunctionStream, int) {
	c := Calibrate(cfg)
	return c.Streams(), c.Pods()
}

// GenerateStream emits the trace Generate(cfg) materializes as a
// time-ordered stream with O(Functions) memory: per-function emitters
// merged by arrival time. The emitted sequence is identical to
// Generate's, ties included: simultaneous arrivals merge in function
// order, which is exactly the order Generate's stable sort leaves them
// in (its pre-sort layout is function-major, and arrivals within one
// function are strictly increasing).
func GenerateStream(cfg GeneratorConfig) Stream {
	return Calibrate(cfg).Stream()
}

// GenerateSource returns a Source for the streaming cluster simulator.
// The calibration sweep runs once, up front; each open then only pays
// for lazy emission, so the simulator's two-pass protocol costs two
// emissions, not two calibrations.
func GenerateSource(cfg GeneratorConfig) Source {
	c := Calibrate(cfg)
	return func() (Stream, error) { return c.Stream(), nil }
}

// mergeEntry is one source's buffered-head key inside a Merge: just the
// ordering fields, 16 bytes. The buffered Request itself lives in a
// per-source slot (merged.heads), so heap sifts move small keys instead
// of ~90-byte Request copies.
type mergeEntry struct {
	start time.Duration
	src   int32
}

// merged is a k-way merge of time-ordered streams over a hand-rolled
// binary heap of (Start, source index) keys: earliest arrival first,
// ties broken toward the lower-indexed source so the merge is
// deterministic.
type merged struct {
	srcs  []func(*Request) bool // per-source NextInto fast paths
	heads []Request             // heads[src] is src's buffered next request
	h     []mergeEntry
}

func (m *merged) less(a, b mergeEntry) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	return a.src < b.src
}

// siftDown restores the heap property from the root.
func (m *merged) siftDown(i int) {
	n := len(m.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && m.less(m.h[right], m.h[left]) {
			least = right
		}
		if !m.less(m.h[least], m.h[i]) {
			return
		}
		m.h[i], m.h[least] = m.h[least], m.h[i]
		i = least
	}
}

func (m *merged) Next() (Request, bool) {
	var r Request
	ok := m.NextInto(&r)
	return r, ok
}

func (m *merged) NextInto(out *Request) bool {
	if len(m.h) == 0 {
		return false
	}
	src := m.h[0].src
	*out = m.heads[src]
	if m.srcs[src](&m.heads[src]) {
		m.h[0].start = m.heads[src].Start
	} else {
		n := len(m.h) - 1
		m.h[0] = m.h[n]
		m.h = m.h[:n]
	}
	m.siftDown(0)
	return true
}

// Merge combines time-ordered streams into one time-ordered stream.
// Each source must be non-decreasing in Start; simultaneous arrivals
// across sources are emitted in source order. Memory is O(len(srcs)).
func Merge(srcs ...Stream) Stream {
	m := &merged{
		srcs:  make([]func(*Request) bool, len(srcs)),
		heads: make([]Request, len(srcs)),
		h:     make([]mergeEntry, 0, len(srcs)),
	}
	for i, s := range srcs {
		m.srcs[i] = NextIntoFunc(s)
		if m.srcs[i](&m.heads[i]) {
			m.h = append(m.h, mergeEntry{start: m.heads[i].Start, src: int32(i)})
		}
	}
	for i := len(m.h)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m
}
