package trace

import (
	"container/heap"
	"time"

	"slscost/internal/stats"
)

// This file is the streaming face of the trace layer: an iterator
// abstraction over time-ordered request sequences, adapters between
// streams and materialized traces, and a streaming generator that emits
// the exact request sequence Generate materializes — in arrival order,
// with memory bounded by the function count rather than the request
// count. internal/scenario re-times these streams per function and
// internal/fleet consumes them for cluster simulations far larger than
// memory would allow a materialized trace.

// Stream is a pull iterator over requests in non-decreasing arrival
// (Start) order. Next returns the next request and true, or a zero
// Request and false once the stream is exhausted. Streams are
// single-use and not safe for concurrent use; re-open one through its
// Source.
type Stream interface {
	Next() (Request, bool)
}

// Source produces a fresh Stream positioned at the beginning. The
// streaming cluster simulator opens its input twice — once for the
// placement scan, once for the replay — so anything fed to it must be
// re-openable; for deterministic generators reopening just means
// re-deriving the same seeded stream.
type Source func() (Stream, error)

// sliceStream iterates over a materialized request slice.
type sliceStream struct {
	reqs []Request
	pos  int
}

func (s *sliceStream) Next() (Request, bool) {
	if s.pos >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.pos]
	s.pos++
	return r, true
}

// FromTrace adapts a materialized trace to the Stream interface. The
// stream shares tr's backing array; it is a view, not a copy.
func FromTrace(tr *Trace) Stream {
	if tr == nil {
		return &sliceStream{}
	}
	return &sliceStream{reqs: tr.Requests}
}

// SourceOf returns a Source that re-opens tr from the start on every
// call — the adapter that lets a recorded (CSV-loaded) trace flow
// through the streaming simulation path.
func SourceOf(tr *Trace) Source {
	return func() (Stream, error) { return FromTrace(tr), nil }
}

// Collect drains a stream into a materialized trace. It is the inverse
// of FromTrace: Collect(FromTrace(tr)) reproduces tr exactly, and
// Collect(GenerateStream(cfg)) equals Generate(cfg).
func Collect(s Stream) *Trace {
	tr := &Trace{}
	for r, ok := s.Next(); ok; r, ok = s.Next() {
		tr.Requests = append(tr.Requests, r)
	}
	return tr
}

// FunctionStream yields one function's requests in generation order,
// which for the generator is also strictly increasing arrival order.
// Durations arrive already rescaled to the configured trace mean, so a
// FunctionStream's requests are bit-identical to the matching subset of
// Generate's output.
type FunctionStream struct {
	fn    int
	count int
	scale float64 // duration rescale factor; 0 disables rescaling
	em    *fnEmitter
	buf   []Request
	pos   int
}

// FnID returns the function the stream belongs to.
func (f *FunctionStream) FnID() int { return f.fn }

// Len returns the total number of requests the stream will yield.
func (f *FunctionStream) Len() int { return f.count }

// Next returns the function's next request in arrival order.
func (f *FunctionStream) Next() (Request, bool) {
	if f.pos >= len(f.buf) {
		f.buf = f.em.nextPod(f.buf)
		f.pos = 0
		if len(f.buf) == 0 {
			return Request{}, false
		}
	}
	r := f.buf[f.pos]
	f.pos++
	if f.scale > 0 {
		// Mirror rescaleDurations exactly: scale wall clock and CPU time
		// by the same factor (preserving utilization rates) and floor the
		// result at one microsecond.
		r.Duration = time.Duration(float64(r.Duration) * f.scale)
		r.CPUTime = time.Duration(float64(r.CPUTime) * f.scale)
		if r.Duration <= 0 {
			r.Duration = time.Microsecond
		}
	}
	return r, true
}

// Calibration is the generator's reusable calibration state: the
// per-function latent profiles, request counts, block-entry RNG
// snapshots, pod-ID bases, and the duration-rescale factor. The
// generator draws every function's randomness from one shared
// sequential stream, so lazy per-function emission needs a calibration
// sweep first — each function's block replayed once (cheaply, nothing
// retained) to record those artifacts. A Calibration is a pure
// function of its GeneratorConfig and can instantiate any number of
// independent stream openings without re-running the sweep; memory is
// O(Functions), not O(Requests).
type Calibration struct {
	cfg      GeneratorConfig // sanitized
	profiles []fnProfile
	counts   []int
	snaps    []*stats.Rand
	podBases []int
	scale    float64
	pods     int
}

// Calibrate runs the calibration sweep for cfg. The result is empty
// (zero functions, zero pods) when cfg requests no trace.
func Calibrate(cfg GeneratorConfig) *Calibration {
	if cfg.Requests <= 0 {
		return &Calibration{}
	}
	cfg = cfg.sanitize()
	rng := stats.NewRand(cfg.Seed)
	profiles, totalWeight := buildProfiles(rng, cfg)
	counts := requestCounts(cfg, profiles, totalWeight)

	c := &Calibration{
		cfg:      cfg,
		profiles: profiles,
		counts:   counts,
		snaps:    make([]*stats.Rand, cfg.Functions),
		podBases: make([]int, cfg.Functions),
	}
	var durSumMs float64
	var scratch []Request
	podBase := 0
	for fn, p := range profiles {
		c.snaps[fn] = rng.Clone()
		c.podBases[fn] = podBase
		e := newFnEmitter(rng, fn, p, counts[fn], cfg.UtilCorrelation, podBase)
		for buf := e.nextPod(scratch); buf != nil; buf = e.nextPod(buf) {
			for i := range buf {
				durSumMs += float64(buf[i].Duration) / float64(time.Millisecond)
			}
			scratch = buf
		}
		podBase = e.podID
	}
	if mean := durSumMs / float64(cfg.Requests); mean > 0 {
		c.scale = cfg.MeanDurationMs / mean
	}
	c.pods = podBase
	return c
}

// Pods returns the total pod count of the calibrated trace.
func (c *Calibration) Pods() int { return c.pods }

// Streams instantiates one fresh time-ordered stream per function,
// each positioned at its function's beginning (the RNG snapshots are
// cloned, so repeated calls yield independent, identical openings).
func (c *Calibration) Streams() []*FunctionStream {
	out := make([]*FunctionStream, len(c.profiles))
	for fn, p := range c.profiles {
		out[fn] = &FunctionStream{
			fn:    fn,
			count: c.counts[fn],
			scale: c.scale,
			em:    newFnEmitter(c.snaps[fn].Clone(), fn, p, c.counts[fn], c.cfg.UtilCorrelation, c.podBases[fn]),
		}
	}
	return out
}

// Stream instantiates a fresh merged stream over the whole calibrated
// trace.
func (c *Calibration) Stream() Stream {
	fns := c.Streams()
	srcs := make([]Stream, len(fns))
	for i, f := range fns {
		srcs[i] = f
	}
	return Merge(srcs...)
}

// GenerateByFunction returns one time-ordered stream per function of
// the trace Generate(cfg) would materialize, plus the total pod count.
// The union of the streams is exactly Generate's request multiset; the
// scenario engine re-times each function's stream independently and
// GenerateStream merges them back into one globally ordered stream.
// Callers opening the same configuration repeatedly should Calibrate
// once and call Streams per opening.
func GenerateByFunction(cfg GeneratorConfig) ([]*FunctionStream, int) {
	c := Calibrate(cfg)
	return c.Streams(), c.Pods()
}

// GenerateStream emits the trace Generate(cfg) materializes as a
// time-ordered stream with O(Functions) memory: per-function emitters
// merged by arrival time. The emitted sequence is identical to
// Generate's, ties included: simultaneous arrivals merge in function
// order, which is exactly the order Generate's stable sort leaves them
// in (its pre-sort layout is function-major, and arrivals within one
// function are strictly increasing).
func GenerateStream(cfg GeneratorConfig) Stream {
	return Calibrate(cfg).Stream()
}

// GenerateSource returns a Source for the streaming cluster simulator.
// The calibration sweep runs once, up front; each open then only pays
// for lazy emission, so the simulator's two-pass protocol costs two
// emissions, not two calibrations.
func GenerateSource(cfg GeneratorConfig) Source {
	c := Calibrate(cfg)
	return func() (Stream, error) { return c.Stream(), nil }
}

// mergeItem is one source's buffered head inside a Merge.
type mergeItem struct {
	r   Request
	src int
}

// mergeHeap orders buffered heads by (Start, source index): earliest
// arrival first, ties broken toward the lower-indexed source so the
// merge is deterministic.
type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].r.Start != h[j].r.Start {
		return h[i].r.Start < h[j].r.Start
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old) - 1
	top := old[n]
	*h = old[:n]
	return top
}

// merged is a k-way merge of time-ordered streams.
type merged struct {
	srcs []Stream
	h    mergeHeap
}

func (m *merged) Next() (Request, bool) {
	if len(m.h) == 0 {
		return Request{}, false
	}
	top := m.h[0]
	if r, ok := m.srcs[top.src].Next(); ok {
		m.h[0] = mergeItem{r: r, src: top.src}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return top.r, true
}

// Merge combines time-ordered streams into one time-ordered stream.
// Each source must be non-decreasing in Start; simultaneous arrivals
// across sources are emitted in source order. Memory is O(len(srcs)).
func Merge(srcs ...Stream) Stream {
	m := &merged{srcs: srcs, h: make(mergeHeap, 0, len(srcs))}
	for i, s := range srcs {
		if r, ok := s.Next(); ok {
			m.h = append(m.h, mergeItem{r: r, src: i})
		}
	}
	heap.Init(&m.h)
	return m
}
