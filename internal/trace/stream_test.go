package trace

import (
	"reflect"
	"testing"
)

// TestCollectFromTraceRoundTrip is the adapter round-trip property:
// Collect(FromTrace(tr)) reproduces tr exactly, for generated traces of
// several sizes including empty.
func TestCollectFromTraceRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 17, 5000} {
		cfg := DefaultGeneratorConfig()
		cfg.Requests = n
		tr := Generate(cfg)
		got := Collect(FromTrace(tr))
		if got.Len() != tr.Len() {
			t.Fatalf("requests=%d: round-trip length %d != %d", n, got.Len(), tr.Len())
		}
		for i := range tr.Requests {
			if got.Requests[i] != tr.Requests[i] {
				t.Fatalf("requests=%d: request %d drifted: %+v vs %+v",
					n, i, got.Requests[i], tr.Requests[i])
			}
		}
	}
}

// TestGenerateStreamMatchesGenerate is the streaming generator's core
// contract: Collect(GenerateStream(cfg)) is bit-identical to
// Generate(cfg) across seeds, sizes, skews, and flavor biases — the
// per-function lazy emitters plus merge reproduce the materialize-and-
// sort path exactly.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	cases := []GeneratorConfig{
		{}, // zero config: both paths must yield an empty trace
		func() GeneratorConfig {
			c := DefaultGeneratorConfig()
			c.Requests = 5000
			return c
		}(),
		{Requests: 2000, Functions: 50, Seed: 1},
		{Requests: 100, Functions: 400, Seed: 2}, // more functions than requests
		{Requests: 3000, Functions: 30, Seed: 3, ZipfExponent: 1.8, FlavorBias: 1},
		{Requests: 3000, Functions: 30, Seed: 4, ZipfExponent: 0.4, FlavorBias: -2},
		{Requests: 1000, Functions: 1, Seed: 5},
		{Requests: 2500, Functions: 80, Seed: 6, ColdStartRate: 0.3, MeanDurationMs: 500},
	}
	for _, cfg := range cases {
		want := Generate(cfg)
		got := Collect(GenerateStream(cfg))
		if got.Len() != want.Len() {
			t.Fatalf("cfg %+v: stream emitted %d requests, Generate %d", cfg, got.Len(), want.Len())
		}
		for i := range want.Requests {
			if got.Requests[i] != want.Requests[i] {
				t.Fatalf("cfg %+v: request %d differs:\nstream:   %+v\ngenerate: %+v",
					cfg, i, got.Requests[i], want.Requests[i])
			}
		}
	}
}

// TestGenerateStreamOrdered pins the Stream contract itself: arrivals
// never move backwards.
func TestGenerateStreamOrdered(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Requests = 8000
	s := GenerateStream(cfg)
	prev, ok := s.Next()
	if !ok {
		t.Fatal("empty stream")
	}
	n := 1
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		if r.Start < prev.Start {
			t.Fatalf("request %d at %v after %v", n, r.Start, prev.Start)
		}
		prev = r
		n++
	}
	if n != cfg.Requests {
		t.Fatalf("stream yielded %d requests, want %d", n, cfg.Requests)
	}
}

// TestGenerateByFunctionPartition checks that the per-function streams
// partition the generated trace: each stream carries exactly its
// function's requests, in order, with the advertised count, and the
// reported pod total matches the trace's.
func TestGenerateByFunctionPartition(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Requests = 4000
	fns, pods := GenerateByFunction(cfg)
	tr := Generate(cfg)

	byFn := make(map[int][]Request)
	maxPod := 0
	for _, r := range tr.Requests {
		byFn[r.FnID] = append(byFn[r.FnID], r)
		if r.PodID > maxPod {
			maxPod = r.PodID
		}
	}
	if pods != maxPod {
		t.Fatalf("pod total %d, trace max pod %d", pods, maxPod)
	}
	if len(fns) != cfg.Functions {
		t.Fatalf("got %d function streams, want %d", len(fns), cfg.Functions)
	}
	for _, f := range fns {
		want := byFn[f.FnID()]
		if f.Len() != len(want) {
			t.Fatalf("fn %d: Len %d, trace has %d", f.FnID(), f.Len(), len(want))
		}
		got := Collect(f)
		if !reflect.DeepEqual(got.Requests, want) && !(len(want) == 0 && got.Len() == 0) {
			t.Fatalf("fn %d: stream requests differ from trace subset", f.FnID())
		}
	}
}

// TestMergeTieBreak pins Merge's determinism rule: simultaneous
// arrivals come out in source order.
func TestMergeTieBreak(t *testing.T) {
	a := &Trace{Requests: []Request{{FnID: 0, Start: 10}, {FnID: 0, Start: 30}}}
	b := &Trace{Requests: []Request{{FnID: 1, Start: 10}, {FnID: 1, Start: 20}}}
	got := Collect(Merge(FromTrace(a), FromTrace(b)))
	wantFns := []int{0, 1, 1, 0}
	for i, r := range got.Requests {
		if r.FnID != wantFns[i] {
			t.Fatalf("position %d: fn %d, want %d (order %+v)", i, r.FnID, wantFns[i], got.Requests)
		}
	}
}
