// Package trace defines the request-level serverless trace schema used by
// the billing analyses (§2 of the paper) and provides a calibrated
// synthetic generator standing in for the Huawei production FaaS trace.
//
// The real trace (558.74M requests) is not redistributable, so the
// generator reproduces the published marginals the paper's analyses depend
// on: mean execution duration ≈ 58.19 ms, mean CPU time ≈ 51.8 ms, mean
// billable memory ≈ 2.75e-2 GB-seconds, low resource-utilization rates
// (≥65% of requests below 50% CPU utilization, ~76% below 50% memory
// utilization), a moderate CPU–memory utilization correlation (Pearson
// ≈ 0.55), heavy-tailed durations, and pod-grouped cold starts where a
// large minority of sandboxes serve too few requests to amortize their
// initialization cost (Figure 4's 42.1%).
package trace

import (
	"fmt"
	"math"
	"time"
)

// Request is one function invocation record, mirroring the fields of the
// Huawei public request tables that §2 consumes.
type Request struct {
	// FnID identifies the function.
	FnID int
	// PodID identifies the runtime sandbox (pod) that served the request.
	// Requests sharing a PodID ran in the same sandbox, in order.
	PodID int
	// Start is the arrival time relative to the trace origin.
	Start time.Duration
	// Duration is the wall-clock execution duration.
	Duration time.Duration
	// CPUTime is the CPU time actually consumed during execution.
	CPUTime time.Duration
	// MemUsedMB is the peak memory consumed in MB.
	MemUsedMB float64
	// AllocCPU is the vCPU allocation of the sandbox flavor.
	AllocCPU float64
	// AllocMemMB is the memory allocation of the sandbox flavor in MB.
	AllocMemMB float64
	// ColdStart marks the first request of a freshly initialized sandbox.
	ColdStart bool
	// InitDuration is the sandbox initialization duration for cold starts
	// (zero otherwise). Initialization happens before Duration begins.
	InitDuration time.Duration
}

// CPUUtilization returns consumed CPU time divided by the CPU capacity
// available over the execution window (allocation × duration), in [0, ∞).
func (r Request) CPUUtilization() float64 {
	cap := r.AllocCPU * r.Duration.Seconds()
	if cap <= 0 {
		return 0
	}
	return r.CPUTime.Seconds() / cap
}

// MemUtilization returns peak consumed memory divided by allocated memory.
func (r Request) MemUtilization() float64 {
	if r.AllocMemMB <= 0 {
		return 0
	}
	return r.MemUsedMB / r.AllocMemMB
}

// ActualCPUSeconds returns the consumed CPU time in vCPU-seconds.
func (r Request) ActualCPUSeconds() float64 { return r.CPUTime.Seconds() }

// ActualMemGBSeconds returns consumed memory integrated over the execution
// window in GB-seconds (peak usage × duration, the trace's accounting).
func (r Request) ActualMemGBSeconds() float64 {
	return r.MemUsedMB / 1024 * r.Duration.Seconds()
}

// AllocCPUSeconds returns allocated vCPUs × wall-clock duration.
func (r Request) AllocCPUSeconds() float64 {
	return r.AllocCPU * r.Duration.Seconds()
}

// AllocMemGBSeconds returns allocated memory × wall-clock duration.
func (r Request) AllocMemGBSeconds() float64 {
	return r.AllocMemMB / 1024 * r.Duration.Seconds()
}

// Turnaround returns the billable wall-clock turnaround time: execution
// duration plus initialization for cold starts.
func (r Request) Turnaround() time.Duration { return r.Duration + r.InitDuration }

// Validate reports whether the record is internally consistent.
func (r Request) Validate() error {
	if r.Duration < 0 || r.CPUTime < 0 || r.InitDuration < 0 {
		return fmt.Errorf("trace: negative duration in request fn=%d", r.FnID)
	}
	for _, v := range []float64{r.MemUsedMB, r.AllocCPU, r.AllocMemMB} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("trace: non-finite resource field in request fn=%d", r.FnID)
		}
	}
	if r.AllocCPU <= 0 || r.AllocMemMB <= 0 {
		return fmt.Errorf("trace: non-positive allocation in request fn=%d", r.FnID)
	}
	if r.MemUsedMB < 0 {
		return fmt.Errorf("trace: negative memory use in request fn=%d", r.FnID)
	}
	if !r.ColdStart && r.InitDuration != 0 {
		return fmt.Errorf("trace: warm request fn=%d has init duration", r.FnID)
	}
	return nil
}

// Trace is an ordered collection of request records.
type Trace struct {
	Requests []Request
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// Durations returns all execution durations in milliseconds.
func (t *Trace) Durations() []float64 {
	out := make([]float64, len(t.Requests))
	for i, r := range t.Requests {
		out[i] = float64(r.Duration) / float64(time.Millisecond)
	}
	return out
}

// CPUUtilizations returns the CPU utilization rate of every request.
func (t *Trace) CPUUtilizations() []float64 {
	out := make([]float64, len(t.Requests))
	for i, r := range t.Requests {
		out[i] = r.CPUUtilization()
	}
	return out
}

// MemUtilizations returns the memory utilization rate of every request.
func (t *Trace) MemUtilizations() []float64 {
	out := make([]float64, len(t.Requests))
	for i, r := range t.Requests {
		out[i] = r.MemUtilization()
	}
	return out
}

// ColdStarts returns the indices of cold-start requests.
func (t *Trace) ColdStarts() []int {
	var out []int
	for i, r := range t.Requests {
		if r.ColdStart {
			out = append(out, i)
		}
	}
	return out
}

// ByPod groups request indices by PodID, preserving order within a pod.
func (t *Trace) ByPod() map[int][]int {
	pods := make(map[int][]int)
	for i, r := range t.Requests {
		pods[r.PodID] = append(pods[r.PodID], i)
	}
	return pods
}

// Validate checks every record.
func (t *Trace) Validate() error {
	for i, r := range t.Requests {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
	}
	return nil
}
