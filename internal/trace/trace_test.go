package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"slscost/internal/stats"
)

func smallTrace(t testing.TB) *Trace {
	t.Helper()
	cfg := DefaultGeneratorConfig()
	cfg.Requests = 30000
	tr := Generate(cfg)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateCount(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Requests = 5000
	tr := Generate(cfg)
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", tr.Len())
	}
}

func TestGenerateEmptyAndDegenerate(t *testing.T) {
	if Generate(GeneratorConfig{}).Len() != 0 {
		t.Error("zero requests should give empty trace")
	}
	// Degenerate knobs fall back to defaults without panicking.
	tr := Generate(GeneratorConfig{Requests: 100, Functions: -1,
		MeanDurationMs: -5, UtilCorrelation: 7, ColdStartRate: 2})
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Requests = 2000
	a, b := Generate(cfg), Generate(cfg)
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs between runs with the same seed", i)
		}
	}
	cfg.Seed++
	c := Generate(cfg)
	same := true
	for i := range a.Requests {
		if a.Requests[i] != c.Requests[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

// TestGenerateCalibration checks the published Huawei-trace marginals the
// §2 analyses depend on (see DESIGN.md substitution table).
func TestGenerateCalibration(t *testing.T) {
	tr := smallTrace(t)

	// Mean execution duration rescaled to exactly 58.19 ms.
	meanDur := stats.Mean(tr.Durations())
	if math.Abs(meanDur-58.19) > 0.5 {
		t.Errorf("mean duration = %.2f ms, want ≈58.19", meanDur)
	}

	// Low utilization: ≥60% of requests below 50% CPU utilization and
	// ≥65% below 50% memory utilization (paper: 65% and 76%).
	cpuU := tr.CPUUtilizations()
	memU := tr.MemUtilizations()
	cpuBelow := stats.NewCDF(cpuU).At(0.5)
	memBelow := stats.NewCDF(memU).At(0.5)
	if cpuBelow < 0.60 {
		t.Errorf("fraction below 50%% CPU utilization = %.2f, want ≥0.60", cpuBelow)
	}
	if memBelow < 0.65 {
		t.Errorf("fraction below 50%% memory utilization = %.2f, want ≥0.65", memBelow)
	}

	// Moderate positive utilization correlation (paper: Pearson 0.552).
	pearson, err := stats.Pearson(cpuU, memU)
	if err != nil {
		t.Fatal(err)
	}
	if pearson < 0.40 || pearson > 0.72 {
		t.Errorf("utilization Pearson = %.3f, want ≈0.55", pearson)
	}
	spearman, err := stats.Spearman(cpuU, memU)
	if err != nil {
		t.Fatal(err)
	}
	if spearman < 0.35 || spearman > 0.75 {
		t.Errorf("utilization Spearman = %.3f, want ≈0.57", spearman)
	}

	// Heavy tail: p99 duration far above the mean.
	sum, err := stats.Summarize(tr.Durations())
	if err != nil {
		t.Fatal(err)
	}
	if sum.P99 < 3*sum.Mean {
		t.Errorf("p99 = %.1f ms vs mean %.1f ms: tail not heavy enough", sum.P99, sum.Mean)
	}

	// Cold starts exist and are a small fraction.
	cold := len(tr.ColdStarts())
	frac := float64(cold) / float64(tr.Len())
	if frac < 0.005 || frac > 0.25 {
		t.Errorf("cold-start fraction = %.3f, want small but non-trivial", frac)
	}
}

func TestGeneratePodStructure(t *testing.T) {
	tr := smallTrace(t)
	pods := tr.ByPod()
	if len(pods) == 0 {
		t.Fatal("no pods")
	}
	for pod, idxs := range pods {
		// Exactly the first request of each pod is a cold start.
		for k, i := range idxs {
			isCold := tr.Requests[i].ColdStart
			if k == 0 && !isCold {
				t.Fatalf("pod %d: first request not cold", pod)
			}
			if k > 0 && isCold {
				t.Fatalf("pod %d: request %d cold mid-pod", pod, k)
			}
		}
		// Single function per pod.
		fn := tr.Requests[idxs[0]].FnID
		for _, i := range idxs {
			if tr.Requests[i].FnID != fn {
				t.Fatalf("pod %d mixes functions", pod)
			}
		}
	}
}

func TestRequestAccessors(t *testing.T) {
	r := Request{
		Duration:     2 * time.Second,
		CPUTime:      500 * time.Millisecond,
		MemUsedMB:    512,
		AllocCPU:     0.5,
		AllocMemMB:   1024,
		ColdStart:    true,
		InitDuration: time.Second,
	}
	if got := r.CPUUtilization(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CPUUtilization = %v", got)
	}
	if got := r.MemUtilization(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MemUtilization = %v", got)
	}
	if got := r.ActualCPUSeconds(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ActualCPUSeconds = %v", got)
	}
	if got := r.ActualMemGBSeconds(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("ActualMemGBSeconds = %v", got)
	}
	if got := r.AllocCPUSeconds(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("AllocCPUSeconds = %v", got)
	}
	if got := r.AllocMemGBSeconds(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("AllocMemGBSeconds = %v", got)
	}
	if got := r.Turnaround(); got != 3*time.Second {
		t.Errorf("Turnaround = %v", got)
	}
	// Zero allocations yield zero utilization, not NaN/Inf.
	var zero Request
	if zero.CPUUtilization() != 0 || zero.MemUtilization() != 0 {
		t.Error("zero-value request should report zero utilization")
	}
}

func TestRequestValidate(t *testing.T) {
	ok := Request{Duration: time.Millisecond, CPUTime: time.Millisecond,
		AllocCPU: 1, AllocMemMB: 128}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	bad := []Request{
		{Duration: -1, AllocCPU: 1, AllocMemMB: 1},
		{AllocCPU: 0, AllocMemMB: 1},
		{AllocCPU: 1, AllocMemMB: 1, MemUsedMB: -1},
		{AllocCPU: 1, AllocMemMB: 1, InitDuration: time.Second}, // warm with init
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Requests = 500
	tr := Generate(cfg)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round-trip length %d vs %d", got.Len(), tr.Len())
	}
	for i := range tr.Requests {
		a, b := tr.Requests[i], got.Requests[i]
		// Durations are stored at microsecond resolution.
		if a.FnID != b.FnID || a.PodID != b.PodID || a.ColdStart != b.ColdStart {
			t.Fatalf("row %d identity mismatch: %+v vs %+v", i, a, b)
		}
		if d := a.Duration - b.Duration; d < 0 || d >= time.Microsecond {
			t.Fatalf("row %d duration mismatch: %v vs %v", i, a.Duration, b.Duration)
		}
		if a.AllocCPU != b.AllocCPU || a.AllocMemMB != b.AllocMemMB {
			t.Fatalf("row %d allocation mismatch", i)
		}
	}
}

// The CSV format stores durations at microsecond resolution; a trace
// already at that resolution must round-trip to exact equality, and a
// second serialization must be byte-identical to the first.
func TestCSVRoundTripExact(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Requests = 2000
	tr := Generate(cfg)
	for i := range tr.Requests {
		r := &tr.Requests[i]
		r.Start = r.Start.Truncate(time.Microsecond)
		r.Duration = r.Duration.Truncate(time.Microsecond)
		r.CPUTime = r.CPUTime.Truncate(time.Microsecond)
		r.InitDuration = r.InitDuration.Truncate(time.Microsecond)
	}

	var first bytes.Buffer
	if err := WriteCSV(&first, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round-trip length %d vs %d", got.Len(), tr.Len())
	}
	for i := range tr.Requests {
		if tr.Requests[i] != got.Requests[i] {
			t.Fatalf("row %d not equal after round-trip:\n%+v\nvs\n%+v",
				i, tr.Requests[i], got.Requests[i])
		}
	}

	var second bytes.Buffer
	if err := WriteCSV(&second, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("write→read→write is not byte-stable")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"bogus\n",               // wrong column count
		"a,b,c,d,e,f,g,h,i,j\n", // wrong header names
		"fn_id,pod_id,start_us,duration_us,cpu_time_us,mem_used_mb,alloc_cpu,alloc_mem_mb,cold_start,init_us\nx,1,1,1,1,1,1,1,true,0\n",  // bad int
		"fn_id,pod_id,start_us,duration_us,cpu_time_us,mem_used_mb,alloc_cpu,alloc_mem_mb,cold_start,init_us\n1,1,1,1,1,1,1,1,maybe,0\n", // bad bool
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Property: utilization rates from the generator are always within [0, 1]
// plus a tiny numeric tolerance, and turnaround ≥ duration.
func TestGeneratorInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultGeneratorConfig()
		cfg.Requests = 300
		cfg.Seed = seed
		tr := Generate(cfg)
		for _, r := range tr.Requests {
			if r.CPUUtilization() < 0 || r.CPUUtilization() > 1.0001 {
				return false
			}
			if r.MemUtilization() < 0 || r.MemUtilization() > 1.0001 {
				return false
			}
			if r.Turnaround() < r.Duration {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
