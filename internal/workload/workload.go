// Package workload provides the serverless workloads used by the paper's
// experiments, in two forms:
//
//   - Real, executable kernels (an AES-CTR encryption loop standing in for
//     FunctionBench's PyAES, a minimal echo function, and an I/O-blocking
//     sleeper) that run on the host and are used by the serving-architecture
//     overhead probes (Figure 8).
//   - Abstract profiles (Spec) describing CPU time, memory footprint, and
//     blocking phases, consumed by the platform and scheduler simulators
//     (Figures 6, 10, 11, 12).
package workload

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"time"
)

// Kind classifies a workload's dominant resource.
type Kind int

const (
	// CPUBound workloads consume CPU for their whole duration (PyAES-like).
	CPUBound Kind = iota
	// IOBound workloads block most of the time (remote API calls).
	IOBound
	// Minimal workloads do essentially nothing (the Figure 8 probe).
	Minimal
	// Mixed workloads alternate compute and blocking phases.
	Mixed
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case CPUBound:
		return "cpu-bound"
	case IOBound:
		return "io-bound"
	case Minimal:
		return "minimal"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is the abstract profile of a serverless function used by the
// simulators. All durations are at full (1 vCPU) allocation; the scheduler
// and contention models stretch them.
type Spec struct {
	// Name identifies the workload in reports.
	Name string
	// Kind is the dominant resource class.
	Kind Kind
	// CPUTime is the CPU time required per request at 1 vCPU.
	CPUTime time.Duration
	// BlockTime is time spent blocked (not consuming CPU) per request.
	BlockTime time.Duration
	// MemoryMB is the peak working-set size in MB.
	MemoryMB float64
	// InitTime is the cold-start initialization duration (runtime +
	// dependency loading) at 1 vCPU.
	InitTime time.Duration
	// InitCPUTime is the CPU consumed during initialization.
	InitCPUTime time.Duration
}

// Duration returns the ideal wall-clock execution duration at 1 vCPU:
// CPU time plus blocking time.
func (s Spec) Duration() time.Duration { return s.CPUTime + s.BlockTime }

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec has empty name")
	}
	if s.CPUTime < 0 || s.BlockTime < 0 || s.InitTime < 0 || s.InitCPUTime < 0 {
		return fmt.Errorf("workload %s: negative duration", s.Name)
	}
	if s.MemoryMB < 0 {
		return fmt.Errorf("workload %s: negative memory", s.Name)
	}
	if s.InitCPUTime > s.InitTime {
		return fmt.Errorf("workload %s: init CPU time %v exceeds init time %v",
			s.Name, s.InitCPUTime, s.InitTime)
	}
	return nil
}

// The canonical workloads referenced throughout the paper's evaluation.
var (
	// PyAES mirrors the FunctionBench PyAES function used in §3.1 and §4.1:
	// a single-threaded, compute-bound request of ≈160 ms CPU time.
	PyAES = Spec{
		Name:        "pyaes",
		Kind:        CPUBound,
		CPUTime:     160 * time.Millisecond,
		MemoryMB:    64,
		InitTime:    250 * time.Millisecond,
		InitCPUTime: 120 * time.Millisecond,
	}

	// MinimalFn is the empty-body function from the Figure 8 overhead probe.
	MinimalFn = Spec{
		Name:        "minimal",
		Kind:        Minimal,
		CPUTime:     50 * time.Microsecond,
		MemoryMB:    16,
		InitTime:    80 * time.Millisecond,
		InitCPUTime: 40 * time.Millisecond,
	}

	// HuaweiMean matches the mean request in the Huawei traces used by the
	// §4.2 theoretical analysis: 51.8 ms CPU time, 58.19 ms duration.
	HuaweiMean = Spec{
		Name:        "huawei-mean",
		Kind:        Mixed,
		CPUTime:     51800 * time.Microsecond,
		BlockTime:   6390 * time.Microsecond,
		MemoryMB:    180,
		InitTime:    400 * time.Millisecond,
		InitCPUTime: 200 * time.Millisecond,
	}

	// VideoProcessing mirrors the SeBS video-processing application the
	// §4.3 intermittent-execution exploit decomposes: a long CPU-heavy job.
	VideoProcessing = Spec{
		Name:        "video-processing",
		Kind:        CPUBound,
		CPUTime:     4 * time.Second,
		BlockTime:   300 * time.Millisecond,
		MemoryMB:    512,
		InitTime:    900 * time.Millisecond,
		InitCPUTime: 500 * time.Millisecond,
	}

	// RemoteAPI is an I/O-dominated function that blocks on a downstream
	// call, used to show wall-clock billing charging for idle waiting.
	RemoteAPI = Spec{
		Name:        "remote-api",
		Kind:        IOBound,
		CPUTime:     5 * time.Millisecond,
		BlockTime:   120 * time.Millisecond,
		MemoryMB:    96,
		InitTime:    300 * time.Millisecond,
		InitCPUTime: 150 * time.Millisecond,
	}
)

// Catalog lists the canonical workloads.
func Catalog() []Spec {
	return []Spec{PyAES, MinimalFn, HuaweiMean, VideoProcessing, RemoteAPI}
}

// ByName returns the canonical workload with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// AESKernel is a real compute kernel: AES-CTR over an in-memory buffer,
// standing in for FunctionBench's PyAES. Calling Run(n) performs n
// encryption passes; the kernel is single-threaded and CPU-bound, exactly
// the profile the paper's scheduling experiments need.
type AESKernel struct {
	stream cipher.Stream
	buf    []byte
	sink   byte
}

// NewAESKernel creates a kernel over a bufSize-byte buffer. bufSize
// defaults to 64 KiB if non-positive.
func NewAESKernel(bufSize int) (*AESKernel, error) {
	if bufSize <= 0 {
		bufSize = 64 << 10
	}
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*7 + 3)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("workload: aes init: %w", err)
	}
	iv := make([]byte, block.BlockSize())
	buf := make([]byte, bufSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	return &AESKernel{stream: cipher.NewCTR(block, iv), buf: buf}, nil
}

// Run performs passes encryption passes over the buffer and returns a
// checksum byte so the compiler cannot elide the work.
func (k *AESKernel) Run(passes int) byte {
	for i := 0; i < passes; i++ {
		k.stream.XORKeyStream(k.buf, k.buf)
		k.sink ^= k.buf[len(k.buf)-1]
	}
	return k.sink
}

// Calibrate measures how many passes the host executes per millisecond of
// CPU time, so callers can convert a Spec.CPUTime into real work.
func (k *AESKernel) Calibrate() (passesPerMs float64) {
	const probe = 64
	start := time.Now()
	k.Run(probe)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return float64(probe)
	}
	return float64(probe) / (float64(elapsed) / float64(time.Millisecond))
}

// Burn spins the kernel for approximately d of CPU time using the supplied
// calibration. It returns the number of passes executed.
func (k *AESKernel) Burn(d time.Duration, passesPerMs float64) int {
	if passesPerMs <= 0 {
		passesPerMs = k.Calibrate()
	}
	passes := int(passesPerMs * float64(d) / float64(time.Millisecond))
	if passes < 1 {
		passes = 1
	}
	k.Run(passes)
	return passes
}
