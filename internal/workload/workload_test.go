package workload

import (
	"strings"
	"testing"
	"time"
)

func TestCatalogValid(t *testing.T) {
	specs := Catalog()
	if len(specs) < 5 {
		t.Fatalf("catalog has %d specs", len(specs))
	}
	seen := make(map[string]bool)
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate workload name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("pyaes")
	if !ok || s.Name != "pyaes" {
		t.Fatalf("ByName(pyaes) = %v, %v", s, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName of unknown workload should be false")
	}
}

func TestSpecDuration(t *testing.T) {
	s := Spec{Name: "x", CPUTime: 100 * time.Millisecond, BlockTime: 20 * time.Millisecond}
	if s.Duration() != 120*time.Millisecond {
		t.Errorf("Duration = %v", s.Duration())
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "neg", CPUTime: -1},
		{Name: "negmem", MemoryMB: -5},
		{Name: "init", InitTime: time.Millisecond, InitCPUTime: 2 * time.Millisecond},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", s)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		CPUBound: "cpu-bound", IOBound: "io-bound", Minimal: "minimal", Mixed: "mixed",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind should format as Kind(n)")
	}
}

func TestPyAESProfileMatchesPaper(t *testing.T) {
	// §3.1: "Each request takes about 160 ms of CPU time."
	if PyAES.CPUTime != 160*time.Millisecond {
		t.Errorf("PyAES CPU time = %v", PyAES.CPUTime)
	}
	// §4.2: Huawei trace mean CPU time 51.8 ms, mean duration 58.19 ms.
	if HuaweiMean.CPUTime != 51800*time.Microsecond {
		t.Errorf("HuaweiMean CPU time = %v", HuaweiMean.CPUTime)
	}
	if HuaweiMean.Duration() != 58190*time.Microsecond {
		t.Errorf("HuaweiMean duration = %v", HuaweiMean.Duration())
	}
}

func TestAESKernel(t *testing.T) {
	k, err := NewAESKernel(0)
	if err != nil {
		t.Fatal(err)
	}
	a := k.Run(3)
	b := k.Run(3)
	_ = a
	_ = b
	// The stream advances, so the internal state changes; just verify it
	// does not panic and consumes work.
	if k.buf == nil {
		t.Fatal("kernel buffer missing")
	}
}

func TestAESKernelCalibrateAndBurn(t *testing.T) {
	k, err := NewAESKernel(16 << 10)
	if err != nil {
		t.Fatal(err)
	}
	rate := k.Calibrate()
	if rate <= 0 {
		t.Fatalf("calibration rate = %v", rate)
	}
	passes := k.Burn(2*time.Millisecond, rate)
	if passes < 1 {
		t.Errorf("Burn executed %d passes", passes)
	}
	// Burn with zero rate self-calibrates.
	if k.Burn(time.Millisecond, 0) < 1 {
		t.Error("self-calibrating Burn did no work")
	}
}

func BenchmarkAESKernelPass(b *testing.B) {
	k, err := NewAESKernel(64 << 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(1)
	}
}
