//go:build !race

package slscost

// raceEnabled reports whether the race detector instruments this test
// binary. Heap-shape tests skip under instrumentation: the detector's
// shadow memory and allocator both distort live-heap measurements, and
// its ~10-20× slowdown would make the multi-million-request runs
// dominate the -race CI job for a property that build measures anyway.
const raceEnabled = false
