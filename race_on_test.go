//go:build race

package slscost

// raceEnabled reports whether the race detector instruments this test
// binary; heap-shape assertions skip under it (see race_off_test.go).
const raceEnabled = true
