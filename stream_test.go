package slscost

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"slscost/internal/core"
	"slscost/internal/fleet"
	"slscost/internal/trace"
)

// heapWatcher samples the live heap while fn runs and returns the peak
// HeapAlloc observed (bytes). Sampling is approximate — it can miss a
// short spike between ticks — but the streaming pipeline's working set
// is steady for seconds at a time, so the peak it reports is a faithful
// bound for the claim under test.
func heapWatcher(fn func()) uint64 {
	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	// Deferred so the sampler stops even when fn bails out through
	// t.Fatal/b.Fatal (runtime.Goexit) — a leaked sampler would keep
	// stop-the-world ReadMemStats ticking under every later test.
	defer close(done)
	fn()
	return peak.Load()
}

// TestStreamBoundedMemory is the CI memory-bound smoke: a one-million-
// request cluster simulation through the streaming pipeline must stay
// within a live-heap budget an order of magnitude below what the
// materialized path needs for the same workload (the trace alone is
// ~140 MB at this size; the streamed working set is pod placement
// metadata, fixed-size latency/slowdown histograms, and in-flight
// batches — nothing per-request). The budget is generous — 128 MB —
// so the test flags an accidental re-materialization of the request
// stream, not GC pacing noise.
func TestStreamBoundedMemory(t *testing.T) {
	const (
		requests  = 1_000_000
		heapLimit = 128 << 20
	)
	gen := trace.DefaultGeneratorConfig()
	gen.Requests = requests

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var rep fleet.Report
	peak := heapWatcher(func() {
		policy, err := fleet.NewPolicy("least-loaded")
		if err != nil {
			t.Fatal(err)
		}
		cfg := fleet.Config{
			Hosts:      32,
			Host:       fleet.DefaultHostSpec(),
			Policy:     policy,
			Profile:    core.AWS(),
			Overcommit: 2,
			Seed:       20260613,
		}
		rep, err = fleet.SimulateStream(context.Background(), cfg, trace.GenerateSource(gen))
		if err != nil {
			t.Fatal(err)
		}
	})

	if rep.Requests != requests {
		t.Fatalf("simulated %d requests, want %d", rep.Requests, requests)
	}
	if rep.Served == 0 {
		t.Fatal("no requests served")
	}
	if peak < base.HeapAlloc {
		peak = base.HeapAlloc // a GC between baseline and first sample shrank the heap
	}
	grew := peak - base.HeapAlloc
	t.Logf("peak live heap during %d-request streamed simulation: %.1f MB (baseline %.1f MB)",
		requests, float64(peak)/(1<<20), float64(base.HeapAlloc)/(1<<20))
	if grew > heapLimit {
		t.Errorf("streamed simulation grew the live heap by %.1f MB, budget %d MB — "+
			"is the pipeline materializing the trace?", float64(grew)/(1<<20), heapLimit>>20)
	}
}

// fixedPodStream emits requests round-robin across a fixed pod
// population with strictly increasing arrivals: a workload whose pod
// count — and therefore the streamed pipeline's placement metadata —
// does not grow with the request count. Re-opening yields the
// identical sequence, satisfying SimulateStream's two-pass contract.
type fixedPodStream struct {
	pods, requests, i int
}

func (s *fixedPodStream) Next() (trace.Request, bool) {
	if s.i >= s.requests {
		return trace.Request{}, false
	}
	i := s.i
	s.i++
	pod := i % s.pods
	r := trace.Request{
		PodID:      pod,
		FnID:       pod % 16,
		Start:      time.Duration(i) * 200 * time.Microsecond,
		Duration:   5 * time.Millisecond,
		CPUTime:    2 * time.Millisecond,
		AllocCPU:   0.5,
		AllocMemMB: 128,
		MemUsedMB:  64,
	}
	if i < s.pods {
		r.ColdStart = true
		r.InitDuration = 100 * time.Millisecond
	}
	return r, true
}

func fixedPodSource(pods, requests int) trace.Source {
	return func() (trace.Stream, error) {
		return &fixedPodStream{pods: pods, requests: requests}, nil
	}
}

// TestStreamFlatHeapAcrossTraceSizes pins the tentpole memory claim:
// with the pod population held fixed, SimulateStream's peak live heap
// is independent of the trace length. Latency accounting is the
// per-request quantity that used to break this — every host retained
// a float64 per served request (and pre-sized the slice to its request
// count), so a 10× longer trace grew the heap by 8 bytes × requests.
// With histogram accounting the only O(requests) state left would be a
// regression, and the 10× run would exceed the small run by tens of
// MB; the allowed slack is far below that signal.
func TestStreamFlatHeapAcrossTraceSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-request simulations; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts live-heap measurement and slows the 4.4M-request run ~10-20x")
	}
	const (
		pods     = 400
		small    = 400_000
		large    = 4_000_000 // 10× — would carry ≥ 28.8 MB of retained latency samples
		slack    = 16 << 20
		absLimit = 64 << 20
	)
	run := func(requests int) uint64 {
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		var rep fleet.Report
		peak := heapWatcher(func() {
			policy, err := fleet.NewPolicy("least-loaded")
			if err != nil {
				t.Fatal(err)
			}
			cfg := fleet.Config{
				Hosts:      32,
				Host:       fleet.DefaultHostSpec(),
				Policy:     policy,
				Profile:    core.AWS(),
				Overcommit: 2,
				Seed:       20260613,
			}
			rep, err = fleet.SimulateStream(context.Background(), cfg, fixedPodSource(pods, requests))
			if err != nil {
				t.Fatal(err)
			}
		})
		if rep.Served != requests {
			t.Fatalf("served %d of %d requests", rep.Served, requests)
		}
		if peak < base.HeapAlloc {
			peak = base.HeapAlloc
		}
		grew := peak - base.HeapAlloc
		t.Logf("%d requests over %d pods: peak live heap grew %.1f MB", requests, pods, float64(grew)/(1<<20))
		return grew
	}

	grewSmall := run(small)
	grewLarge := run(large)
	if grewLarge > absLimit {
		t.Errorf("large run grew the live heap by %.1f MB, limit %d MB", float64(grewLarge)/(1<<20), absLimit>>20)
	}
	if grewLarge > grewSmall+slack {
		t.Errorf("peak heap not flat across a 10× trace: %.1f MB at %d requests vs %.1f MB at %d (slack %d MB) — "+
			"is per-request state being retained again?",
			float64(grewLarge)/(1<<20), large, float64(grewSmall)/(1<<20), small, slack>>20)
	}
}
