package slscost

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"slscost/internal/core"
	"slscost/internal/fleet"
	"slscost/internal/trace"
)

// heapWatcher samples the live heap while fn runs and returns the peak
// HeapAlloc observed (bytes). Sampling is approximate — it can miss a
// short spike between ticks — but the streaming pipeline's working set
// is steady for seconds at a time, so the peak it reports is a faithful
// bound for the claim under test.
func heapWatcher(fn func()) uint64 {
	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	// Deferred so the sampler stops even when fn bails out through
	// t.Fatal/b.Fatal (runtime.Goexit) — a leaked sampler would keep
	// stop-the-world ReadMemStats ticking under every later test.
	defer close(done)
	fn()
	return peak.Load()
}

// TestStreamBoundedMemory is the CI memory-bound smoke: a one-million-
// request cluster simulation through the streaming pipeline must stay
// within a live-heap budget an order of magnitude below what the
// materialized path needs for the same workload (the trace alone is
// ~140 MB at this size; the streamed working set is pod metadata, the
// latency accumulator, and in-flight batches). The budget is generous
// — 128 MB — so the test flags an accidental re-materialization of the
// request stream, not GC pacing noise.
func TestStreamBoundedMemory(t *testing.T) {
	const (
		requests  = 1_000_000
		heapLimit = 128 << 20
	)
	gen := trace.DefaultGeneratorConfig()
	gen.Requests = requests

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var rep fleet.Report
	peak := heapWatcher(func() {
		policy, err := fleet.NewPolicy("least-loaded")
		if err != nil {
			t.Fatal(err)
		}
		cfg := fleet.Config{
			Hosts:      32,
			Host:       fleet.DefaultHostSpec(),
			Policy:     policy,
			Profile:    core.AWS(),
			Overcommit: 2,
			Seed:       20260613,
		}
		rep, err = fleet.SimulateStream(cfg, trace.GenerateSource(gen))
		if err != nil {
			t.Fatal(err)
		}
	})

	if rep.Requests != requests {
		t.Fatalf("simulated %d requests, want %d", rep.Requests, requests)
	}
	if rep.Served == 0 {
		t.Fatal("no requests served")
	}
	if peak < base.HeapAlloc {
		peak = base.HeapAlloc // a GC between baseline and first sample shrank the heap
	}
	grew := peak - base.HeapAlloc
	t.Logf("peak live heap during %d-request streamed simulation: %.1f MB (baseline %.1f MB)",
		requests, float64(peak)/(1<<20), float64(base.HeapAlloc)/(1<<20))
	if grew > heapLimit {
		t.Errorf("streamed simulation grew the live heap by %.1f MB, budget %d MB — "+
			"is the pipeline materializing the trace?", float64(grew)/(1<<20), heapLimit>>20)
	}
}
